//! Human-readable run reports for the CLI.

use bulk_chaos::FaultStats;
use bulk_live::LiveStats;
use bulk_mem::MsgClass;
use bulk_par::{RunDetail, RunReport};
use bulk_tls::{TlsScheme, TlsStats};
use bulk_tm::{Scheme, TmStats};

/// Prints a TM run summary. `chaos_active` tells whether a fault plan was
/// armed; the resilience section is omitted otherwise.
pub fn print_tm(app: &str, scheme: Scheme, s: &TmStats, chaos_active: bool) {
    println!("TM run: app={app} scheme={scheme} runtime=sim");
    println!("  commits            {}", s.commits);
    println!(
        "  squashes           {} ({} from aliasing, {:.1}%)",
        s.squashes,
        s.false_squashes,
        100.0 * s.false_squash_frac()
    );
    if s.partial_rollbacks > 0 {
        println!(
            "  partial rollbacks  {} ({} sections)",
            s.partial_rollbacks, s.sections_rolled_back
        );
    }
    if s.stalls > 0 {
        println!("  eager stalls       {}", s.stalls);
    }
    if s.livelocked {
        if s.liveness.watchdog_trips > 0 {
            println!("  *** LIVELOCKED (watchdog tripped) ***");
        } else {
            println!("  *** LIVELOCKED (squash cap hit) ***");
        }
    }
    println!(
        "  footprints         rd {:.1} / wr {:.1} lines per committed tx",
        s.avg_rd_set(),
        s.avg_wr_set()
    );
    println!("  safe writebacks    {:.2} per tx", s.safe_wb_per_commit());
    println!(
        "  overflow           {} spills, {} area accesses",
        s.overflow_spills, s.overflow_accesses
    );
    println!("  cycles             {}", s.cycles);
    print_bw("  ", &s.bw);
    print_resilience(
        chaos_active,
        &s.chaos,
        s.commit_retries,
        s.escalations,
        s.serialized_commits,
        s.audit_checks,
        s.violations.len(),
    );
    print_liveness(&s.liveness, s.liveness_violations.len());
}

/// Prints a TLS run summary. `chaos_active` tells whether a fault plan was
/// armed; the resilience section is omitted otherwise.
pub fn print_tls(app: &str, scheme: TlsScheme, seq_cycles: u64, s: &TlsStats, chaos_active: bool) {
    println!("TLS run: app={app} scheme={scheme} runtime=sim");
    println!("  commits            {}", s.commits);
    println!(
        "  squashes           {} ({} from aliasing, {:.1}%)",
        s.squashes,
        s.false_squashes,
        100.0 * s.false_squash_frac()
    );
    println!(
        "  footprints         rd {:.1} / wr {:.1} words per committed task",
        s.avg_rd_set(),
        s.avg_wr_set()
    );
    println!(
        "  set restriction    {:.2} safe WB/task, {:.1} wr-wr conflicts/1k tasks",
        s.safe_wb_per_task(),
        s.wr_wr_per_1k_tasks()
    );
    println!("  word merges        {}", s.line_merges);
    println!(
        "  cycles             {} (sequential {}, speedup {:.2}x)",
        s.cycles,
        seq_cycles,
        seq_cycles as f64 / s.cycles as f64
    );
    print_bw("  ", &s.bw);
    print_resilience(
        chaos_active,
        &s.chaos,
        s.commit_retries,
        s.escalations,
        s.serialized_commits,
        s.audit_checks,
        s.violations.len(),
    );
    print_liveness(&s.liveness, s.liveness_violations.len());
}

/// Prints a parallel-runtime run summary for either machine
/// (`machine` is `"TM"` or `"TLS"`). Wall time replaces simulated
/// cycles; the exactly-once line shows the `crates/live` dedup machinery
/// at work (drops are nonzero only under stress injection, duplicate
/// applications must always be zero). A resilience section appears
/// whenever the supervisor survived worker deaths — crashes, respawns,
/// fence tombstones (TM), adopted slots (TLS) and the recovery latency.
pub fn print_par(machine: &str, app: &str, scheme: &str, r: &RunReport) {
    println!("{machine} run: app={app} scheme={scheme} runtime={}", r.runtime);
    let RunDetail::Par(s) = &r.detail else {
        println!("  commits            {}", r.commits);
        println!("  squashes           {}", r.squashes);
        return;
    };
    println!("  commits            {}", s.commits);
    println!(
        "  squashes           {} ({} from aliasing, {:.1}%)",
        s.squashes,
        s.false_squashes,
        if s.squashes > 0 { 100.0 * s.false_squashes as f64 / s.squashes as f64 } else { 0.0 }
    );
    println!(
        "  bus log            {} records ({} non-tx stores), {} claim retries",
        s.records, s.non_tx_stores, s.claim_retries
    );
    println!(
        "  exactly-once       {} dedup drops, {} duplicate applications, epoch {}",
        s.dedup_drops, s.duplicate_applications, s.epoch
    );
    let per: Vec<String> = s.per_thread_commits.iter().map(u64::to_string).collect();
    println!("  commits per thread {}", per.join(" "));
    if s.worker_crashes > 0 {
        println!(
            "  resilience         {} worker crashes, {} respawns, {} fences, \
             {} adopted slots",
            s.worker_crashes, s.respawns, s.fences, s.adopted_slots
        );
        println!("  recovery time      {:.3} ms", s.recovery_ns as f64 / 1e6);
    }
    if s.injected_stalls + s.delayed_publishes > 0 {
        println!(
            "  chaos injections   {} stalls, {} delayed publishes",
            s.injected_stalls, s.delayed_publishes
        );
    }
    println!("  wall time          {:.3} ms", s.wall_ns as f64 / 1e6);
    println!("  audit              {} checks, {} violations", s.audit_checks, s.violations.len());
}

/// Serializes a parallel-runtime report as a self-describing metrics
/// JSON: the `runtime` and `seed` fields tell artifact consumers which
/// substrate produced the numbers under which workload seed, mirroring
/// the wrapped registry JSON the sim path writes.
pub fn par_metrics_json(r: &RunReport, seed: u64) -> String {
    let RunDetail::Par(s) = &r.detail else {
        return format!("{{\n  \"runtime\": \"{}\",\n  \"seed\": {seed}\n}}\n", r.runtime);
    };
    let counters = [
        ("commits", s.commits),
        ("squashes", s.squashes),
        ("false_squashes", s.false_squashes),
        ("claim_retries", s.claim_retries),
        ("non_tx_stores", s.non_tx_stores),
        ("records", s.records),
        ("dedup_drops", s.dedup_drops),
        ("duplicate_applications", s.duplicate_applications),
        ("worker_crashes", s.worker_crashes),
        ("respawns", s.respawns),
        ("fences", s.fences),
        ("adopted_slots", s.adopted_slots),
        ("recovery_ns", s.recovery_ns),
        ("injected_stalls", s.injected_stalls),
        ("delayed_publishes", s.delayed_publishes),
        ("epoch", s.epoch),
        ("audit_checks", s.audit_checks),
        ("violations", s.violations.len() as u64),
        ("wall_ns", s.wall_ns),
    ];
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"runtime\": \"{}\",\n", r.runtime));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"metrics\": {\n    \"counters\": {\n");
    for (i, (k, v)) in counters.iter().enumerate() {
        let sep = if i + 1 == counters.len() { "" } else { "," };
        out.push_str(&format!("      \"{k}\": {v}{sep}\n"));
    }
    out.push_str("    },\n");
    let per: Vec<String> = s.per_thread_commits.iter().map(u64::to_string).collect();
    out.push_str(&format!("    \"per_thread_commits\": [{}]\n", per.join(", ")));
    out.push_str("  }\n}\n");
    out
}

/// Liveness-engine section: printed only when the engine recorded
/// anything (the stats are all zeros unless it was armed).
fn print_liveness(l: &LiveStats, violations: usize) {
    if *l == LiveStats::default() && violations == 0 {
        return;
    }
    println!(
        "  liveness           {} backoff waits ({} cycles, {} storm widenings), \
         {} watchdog trips",
        l.backoff_waits, l.backoff_cycles, l.storm_widenings, l.watchdog_trips
    );
    if l.arbiter_crashes > 0 {
        println!(
            "  arbiter            {} crashes survived (epoch {}), {} replays, \
             {} dedup drops, {} duplicate applications",
            l.arbiter_crashes,
            l.arbiter_epoch,
            l.replayed_commits,
            l.dedup_drops,
            l.duplicate_applications
        );
    }
    if l.checkpoints > 0 {
        println!(
            "  checkpoints        {} captured, {} restore failures",
            l.checkpoints, l.checkpoint_restore_failures
        );
    }
}

/// Chaos/audit section. The fault and degradation lines belong to chaos
/// runs: without an armed FaultPlan they would report stale zeros (or
/// ordinary escalations dressed up as resilience data), so they are gated
/// on `chaos_active`. The audit line stands on its own whenever the
/// auditor ran.
fn print_resilience(
    chaos_active: bool,
    chaos: &FaultStats,
    retries: u64,
    escalations: u64,
    serialized: u64,
    audit_checks: u64,
    violations: usize,
) {
    if chaos_active && chaos.total_injected() > 0 {
        println!(
            "  chaos faults       {} ({} denials, {} delays, {} dups, \
             {} corruptions [{} caught], {} ctx switches, {} evictions)",
            chaos.total_injected(),
            chaos.denials,
            chaos.broadcast_delays,
            chaos.duplicated_broadcasts,
            chaos.corruptions_injected,
            chaos.corruptions_detected,
            chaos.forced_context_switches,
            chaos.forced_evictions
        );
    }
    if chaos_active && retries + escalations + serialized > 0 {
        println!(
            "  degradation        {retries} commit retries, {escalations} escalations, \
             {serialized} serialized commits"
        );
    }
    if audit_checks > 0 {
        println!("  audit              {audit_checks} checks, {violations} violations");
    }
}

fn print_bw(indent: &str, bw: &bulk_mem::BandwidthStats) {
    let parts: Vec<String> = MsgClass::ALL
        .iter()
        .map(|c| format!("{c}={}", human_bytes(bw.bytes(*c))))
        .collect();
    println!("{indent}traffic            {}", parts.join("  "));
    println!(
        "{indent}commit bandwidth   {} in {} broadcasts",
        human_bytes(bw.commit_bytes()),
        bw.commit_count()
    );
}

fn human_bytes(b: u64) -> String {
    if b >= 10_000_000 {
        format!("{:.1}MB", b as f64 / 1e6)
    } else if b >= 10_000 {
        format!("{:.1}KB", b as f64 / 1e3)
    } else {
        format!("{b}B")
    }
}

/// Prints the `--metrics` section: squash attribution, invalidation
/// overshoot and the full registry contents, for the machine under
/// `prefix` (`"tm."` or `"tls."`). `runtime` names the substrate that
/// produced the block, so mixed-runtime transcripts stay unambiguous.
pub fn print_metrics(reg: &bulk_obs::Registry, prefix: &str, runtime: &str) {
    let c = |name: &str| reg.counter_value(&format!("{prefix}{name}"));
    let total = c("squashes");
    let tc = c("squash.true_conflict");
    let aliasing = c("squash.aliasing");
    println!("metrics ({}, runtime={runtime}):", prefix.trim_end_matches('.'));
    let share = if total > 0 { 100.0 * aliasing as f64 / total as f64 } else { 0.0 };
    println!(
        "  squash attribution {total} total = {tc} true-conflict + {aliasing} aliasing ({share:.1}%)"
    );
    let inv = c("invalidate.lines");
    if inv > 0 {
        println!(
            "  bulk invalidation  {} lines = {} exact + {} overshoot",
            inv,
            c("invalidate.exact"),
            c("invalidate.overshoot")
        );
    }
    let verdicts = c("verdict.true_positive")
        + c("verdict.false_positive")
        + c("verdict.true_negative")
        + c("verdict.false_negative");
    if verdicts > 0 {
        println!(
            "  verdicts           {} TP, {} FP, {} TN, {} FN (vs exact oracle)",
            c("verdict.true_positive"),
            c("verdict.false_positive"),
            c("verdict.true_negative"),
            c("verdict.false_negative")
        );
    }
    println!("  counters:");
    for (name, value) in reg.counters() {
        println!("    {name:<34} {value}");
    }
    let gauges = reg.gauges();
    if !gauges.is_empty() {
        println!("  gauges:");
        for (name, value) in gauges {
            println!("    {name:<34} {value}");
        }
    }
    let hists = reg.histograms();
    if let Some((_, h)) = hists
        .iter()
        .find(|(name, _)| name == &format!("{prefix}commit.latency_cycles"))
    {
        if let (Some(p50), Some(p95), Some(p99)) =
            (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99))
        {
            println!(
                "  commit latency     p50={p50} p95={p95} p99={p99} cycles \
                 (upper bucket edges, n={})",
                h.count()
            );
        }
    }
    if !hists.is_empty() {
        println!("  histograms:");
        for (name, h) in hists {
            let mean = if h.count() > 0 { h.sum() as f64 / h.count() as f64 } else { 0.0 };
            println!(
                "    {name:<34} n={} sum={} mean={mean:.1}",
                h.count(),
                h.sum()
            );
        }
    }
}

/// Prints the cycle-accounting breakdown (the paper's Fig. 13 categories)
/// from the `{prefix}cycles.*` counters published by the trace reducer.
/// Silent when tracing produced no accounting (total is zero).
pub fn print_cycle_breakdown(reg: &bulk_obs::Registry, prefix: &str) {
    let c = |name: &str| reg.counter_value(&format!("{prefix}cycles.{name}"));
    let total = c("total");
    if total == 0 {
        return;
    }
    println!("  cycle breakdown (per-thread timelines, {total} cycles):");
    let pct = |v: u64| 100.0 * v as f64 / total as f64;
    for name in ["useful", "squashed", "commit", "stall", "overhead", "other"] {
        let v = c(name);
        println!("    {name:<10} {v:>12}  {:5.1}%", pct(v));
    }
    let bus = c("commit_bus");
    if bus > 0 {
        println!("    {:<10} {bus:>12}  (bus lane, not part of the conservation sum)", "bus");
    }
    let viol = c("audit_violations");
    if viol > 0 {
        println!("    *** {viol} cycle-conservation violations ***");
    }
}

/// Prints the event-log drop line of the `--metrics` report: how many
/// records the bounded ring retained and how many it discarded.
pub fn print_event_drops(events: &bulk_obs::EventLog) {
    println!(
        "  events.dropped     {} (retained {})",
        events.dropped(),
        events.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(0), "0B");
        assert_eq!(human_bytes(9_999), "9999B");
        assert_eq!(human_bytes(20_000), "20.0KB");
        assert_eq!(human_bytes(12_000_000), "12.0MB");
    }

    #[test]
    fn reports_do_not_panic() {
        print_tm("t", Scheme::Bulk, &TmStats::default(), false);
        print_tls("t", TlsScheme::Bulk, 1, &TlsStats::default(), true);
        let reg = bulk_obs::Registry::new();
        reg.counter("tm.squashes").add(3);
        reg.counter("tm.squash.true_conflict").add(2);
        reg.counter("tm.squash.aliasing").add(1);
        print_metrics(&reg, "tm.", "sim");
    }

    #[test]
    fn par_report_prints_and_serializes() {
        use bulk_par::{conflict_light_tm, ParRuntime, Runtime};
        use bulk_sim::SimConfig;

        let wl = conflict_light_tm(2, 4, 1, 0);
        let r = ParRuntime::default()
            .run_tm(&wl, Scheme::Bulk, &SimConfig::tm_default())
            .unwrap();
        print_par("TM", "conflict_light", "bulk", &r);
        let json = par_metrics_json(&r, 7);
        assert!(json.contains("\"runtime\": \"par\""), "{json}");
        assert!(json.contains("\"seed\": 7"), "{json}");
        assert!(json.contains("\"commits\": 4"), "{json}");
        assert!(json.contains("\"duplicate_applications\": 0"), "{json}");
        assert!(json.contains("\"per_thread_commits\": [2, 2]"), "{json}");
    }

    #[test]
    fn cycle_breakdown_prints_when_populated() {
        let reg = bulk_obs::Registry::new();
        print_cycle_breakdown(&reg, "tm."); // silent on empty totals
        reg.counter("tm.cycles.total").add(1000);
        reg.counter("tm.cycles.useful").add(600);
        reg.counter("tm.cycles.commit").add(400);
        print_cycle_breakdown(&reg, "tm.");
        print_event_drops(&bulk_obs::EventLog::new());
    }
}
