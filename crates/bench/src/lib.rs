//! Experiment harness: runners and formatting that regenerate every table
//! and figure of the paper's evaluation (§7). One binary per artifact:
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `fig10`  | TLS speedups: Eager/Lazy/Bulk/BulkNoOverlap |
//! | `fig11`  | TM speedups over Eager: Eager/Lazy/Bulk/Bulk-Partial |
//! | `fig12`  | Eager livelock & eager-only squash patterns |
//! | `table6` | Bulk characterization in TLS |
//! | `table7` | Bulk characterization in TM |
//! | `fig13`  | TM bandwidth breakdown (Inv/Coh/UB/WB/Fill) |
//! | `fig14`  | Commit bandwidth of Bulk normalized to Lazy |
//! | `table8` | Signature catalog: sizes and RLE-compressed sizes |
//! | `fig15`  | False-positive rate per signature configuration |
//!
//! Run them with `cargo run --release -p bulk-bench --bin <name>`.

pub mod fpsweep;
pub mod regress;
pub mod runners;
pub mod summary;
pub mod table;
pub mod timer;

pub use fpsweep::{sweep_config, FpSample};
pub use regress::{diff_dirs, diff_suites, parse_suite, Regression, SuiteResults, DEFAULT_TOLERANCE};
pub use runners::{run_all_tls, run_all_tm, run_tls_app, run_tm_app, TlsAppResult, TmAppResult};
pub use summary::{scenario_metrics, write_summary};
pub use table::{fmt_f, geomean, print_table};
pub use timer::{BenchResult, BenchSuite};

#[cfg(test)]
mod tests {
    #[test]
    fn geomean_of_ones_is_one() {
        assert!((crate::geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }
}
