//! Bench regression gating: parse `BENCH_*.json` results, compare a fresh
//! run against a committed baseline, and report regressions.
//!
//! The committed baselines live in `crates/bench/baselines/`; CI runs the
//! suites with `BULK_BENCH_OUT` pointing at a scratch directory and then
//! `bulk-bench-diff --baseline-dir crates/bench/baselines --fresh-dir
//! <scratch>`, which exits nonzero when any benchmark's fresh median
//! exceeds the baseline median by more than the tolerance, or when a
//! baseline suite/benchmark is missing from the fresh run. Wall-clock
//! medians vary across machines, so the default tolerance is generous —
//! the gate catches order-of-magnitude regressions (an accidental
//! `O(n^2)` in the signature hot path), not percent-level noise.

use std::collections::BTreeMap;
use std::path::Path;

/// Default `--tolerance`: a fresh median may be up to `1 + 3.0 = 4x` the
/// baseline before the gate trips. Wide on purpose; see the module docs.
pub const DEFAULT_TOLERANCE: f64 = 3.0;

/// One suite parsed from a `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResults {
    /// Suite name (the `"suite"` field).
    pub suite: String,
    /// Median nanoseconds per benchmark, keyed by `group/bench`.
    pub medians: BTreeMap<String, f64>,
}

/// One benchmark whose fresh result regressed against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Suite the benchmark belongs to.
    pub suite: String,
    /// `group/bench` key.
    pub bench: String,
    /// Baseline median in nanoseconds.
    pub baseline_ns: f64,
    /// Fresh median in nanoseconds (`None`: missing from the fresh run).
    pub fresh_ns: Option<f64>,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.fresh_ns {
            Some(fresh) => write!(
                f,
                "{}: {} regressed {:.1}x (baseline {:.1} ns, fresh {:.1} ns)",
                self.suite,
                self.bench,
                fresh / self.baseline_ns,
                self.baseline_ns,
                fresh
            ),
            None => write!(
                f,
                "{}: {} missing from the fresh run (baseline {:.1} ns)",
                self.suite, self.bench, self.baseline_ns
            ),
        }
    }
}

/// Extracts the string value of `"key": "value"` from a JSON fragment.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // BENCH names never contain escaped quotes in practice, but the
    // writer escapes them, so unescape to stay a faithful inverse.
    let end = {
        let bytes = rest.as_bytes();
        let mut i = 0;
        loop {
            match bytes.get(i)? {
                b'\\' => i += 2,
                b'"' => break i,
                _ => i += 1,
            }
        }
    };
    Some(rest[..end].replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Extracts the numeric value of `"key": 1.23` from a JSON fragment.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the fixed `BENCH_*.json` layout written by
/// [`crate::BenchSuite::to_json`].
///
/// # Errors
///
/// Returns a message naming the missing field when the text is not a
/// bench results file.
pub fn parse_suite(text: &str) -> Result<SuiteResults, String> {
    let suite = text
        .lines()
        .find_map(|l| str_field(l, "suite"))
        .ok_or("missing \"suite\" field")?;
    let mut medians = BTreeMap::new();
    for line in text.lines() {
        let Some(group) = str_field(line, "group") else { continue };
        let bench = str_field(line, "bench").ok_or("result entry without \"bench\"")?;
        let median = num_field(line, "median_ns").ok_or("result entry without \"median_ns\"")?;
        medians.insert(format!("{group}/{bench}"), median);
    }
    Ok(SuiteResults { suite, medians })
}

/// Compares one fresh suite against its baseline. A regression is a
/// benchmark missing from the fresh run, or one whose fresh median
/// exceeds `baseline * (1 + tolerance)`. Benchmarks only present in the
/// fresh run are new and never regressions.
pub fn diff_suites(baseline: &SuiteResults, fresh: &SuiteResults, tolerance: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for (bench, &base_ns) in &baseline.medians {
        match fresh.medians.get(bench) {
            None => out.push(Regression {
                suite: baseline.suite.clone(),
                bench: bench.clone(),
                baseline_ns: base_ns,
                fresh_ns: None,
            }),
            Some(&fresh_ns) => {
                if fresh_ns > base_ns * (1.0 + tolerance) {
                    out.push(Regression {
                        suite: baseline.suite.clone(),
                        bench: bench.clone(),
                        baseline_ns: base_ns,
                        fresh_ns: Some(fresh_ns),
                    });
                }
            }
        }
    }
    out
}

/// Directory-level gate: every `BENCH_*.json` in `baseline_dir` must have
/// a counterpart in `fresh_dir` that passes [`diff_suites`]. Returns all
/// regressions (a missing fresh file reports every baseline benchmark of
/// that suite as missing) plus the number of suites compared.
///
/// # Errors
///
/// Returns a message when a directory cannot be read or a baseline file
/// cannot be parsed (a corrupt baseline must fail the gate, not pass it).
pub fn diff_dirs(
    baseline_dir: &Path,
    fresh_dir: &Path,
    tolerance: f64,
) -> Result<(Vec<Regression>, usize), String> {
    let mut regressions = Vec::new();
    let mut suites = 0usize;
    let mut names: Vec<std::path::PathBuf> = std::fs::read_dir(baseline_dir)
        .map_err(|e| format!("cannot read baseline dir {}: {e}", baseline_dir.display()))?
        .filter_map(|ent| ent.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no BENCH_*.json baselines in {}", baseline_dir.display()));
    }
    for base_path in names {
        let base_text = std::fs::read_to_string(&base_path)
            .map_err(|e| format!("cannot read {}: {e}", base_path.display()))?;
        let baseline = parse_suite(&base_text)
            .map_err(|e| format!("{}: {e}", base_path.display()))?;
        suites += 1;
        let fresh_path = fresh_dir.join(base_path.file_name().expect("filtered on file name"));
        let fresh = match std::fs::read_to_string(&fresh_path) {
            Ok(text) => parse_suite(&text).map_err(|e| format!("{}: {e}", fresh_path.display()))?,
            // A missing fresh file: every baseline benchmark is missing.
            Err(_) => SuiteResults { suite: baseline.suite.clone(), medians: BTreeMap::new() },
        };
        regressions.extend(diff_suites(&baseline, &fresh, tolerance));
    }
    Ok((regressions, suites))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite_json(median: f64) -> String {
        format!(
            "{{\n  \"suite\": \"selftest\",\n  \"samples_per_bench\": 15,\n  \"results\": [\n    \
             {{\"group\": \"g\", \"bench\": \"a\", \"iters\": 10, \"median_ns\": {median:.2}, \
             \"min_ns\": 1.00, \"max_ns\": 9.00}},\n    \
             {{\"group\": \"g\", \"bench\": \"b\", \"iters\": 10, \"median_ns\": 50.00, \
             \"min_ns\": 1.00, \"max_ns\": 9.00}}\n  ],\n  \"metrics\": null\n}}\n"
        )
    }

    #[test]
    fn parses_the_writer_format() {
        let s = parse_suite(&suite_json(120.5)).unwrap();
        assert_eq!(s.suite, "selftest");
        assert_eq!(s.medians.len(), 2);
        assert_eq!(s.medians["g/a"], 120.5);
        assert_eq!(s.medians["g/b"], 50.0);
        assert!(parse_suite("{}").is_err());
    }

    #[test]
    fn round_trips_a_real_bench_suite() {
        let mut suite = crate::BenchSuite::named("roundtrip");
        suite.bench("grp", "spin", || std::hint::black_box(1u64));
        let parsed = parse_suite(&suite.to_json()).unwrap();
        assert_eq!(parsed.suite, "roundtrip");
        assert!(parsed.medians.contains_key("grp/spin"));
    }

    #[test]
    fn baseline_vs_itself_is_clean() {
        let s = parse_suite(&suite_json(100.0)).unwrap();
        assert!(diff_suites(&s, &s, 0.0).is_empty());
    }

    #[test]
    fn slowdown_past_tolerance_regresses() {
        let base = parse_suite(&suite_json(100.0)).unwrap();
        let fresh = parse_suite(&suite_json(500.0)).unwrap();
        let r = diff_suites(&base, &fresh, 3.0);
        assert_eq!(r.len(), 1, "only g/a slowed down: {r:?}");
        assert_eq!(r[0].bench, "g/a");
        assert!(r[0].to_string().contains("5.0x"), "{}", r[0]);
        // Just inside the tolerance: no regression.
        let ok = parse_suite(&suite_json(399.0)).unwrap();
        assert!(diff_suites(&base, &ok, 3.0).is_empty());
    }

    #[test]
    fn missing_bench_is_a_regression_but_new_bench_is_not() {
        let base = parse_suite(&suite_json(100.0)).unwrap();
        let mut fresh = base.clone();
        fresh.medians.remove("g/b");
        fresh.medians.insert("g/new".into(), 1.0);
        let r = diff_suites(&base, &fresh, 3.0);
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].bench.as_str(), r[0].fresh_ns), ("g/b", None));
        assert!(r[0].to_string().contains("missing"));
    }

    #[test]
    fn directory_gate_flags_injected_regression_and_passes_baseline_vs_baseline() {
        let dir = std::env::temp_dir().join(format!("bulk-regress-{}", std::process::id()));
        let (base_dir, fresh_dir) = (dir.join("base"), dir.join("fresh"));
        std::fs::create_dir_all(&base_dir).unwrap();
        std::fs::create_dir_all(&fresh_dir).unwrap();
        std::fs::write(base_dir.join("BENCH_selftest.json"), suite_json(100.0)).unwrap();

        // Baseline vs itself: zero regressions.
        let (r, suites) = diff_dirs(&base_dir, &base_dir, DEFAULT_TOLERANCE).unwrap();
        assert_eq!((r.len(), suites), (0, 1));

        // Injected synthetic regression: nonzero.
        std::fs::write(fresh_dir.join("BENCH_selftest.json"), suite_json(100_000.0)).unwrap();
        let (r, _) = diff_dirs(&base_dir, &fresh_dir, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(r.len(), 1);

        // Missing fresh file: every baseline benchmark reported missing.
        std::fs::remove_file(fresh_dir.join("BENCH_selftest.json")).unwrap();
        let (r, _) = diff_dirs(&base_dir, &fresh_dir, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(r.len(), 2);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
