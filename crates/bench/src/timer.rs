//! A minimal wall-clock benchmark harness (the in-repo stand-in for
//! `criterion`).
//!
//! Each `[[bench]]` target builds a [`BenchSuite`], registers routines
//! with [`BenchSuite::bench`] / [`BenchSuite::bench_batched`], and calls
//! [`BenchSuite::finish`]. Per routine the harness:
//!
//! 1. calibrates an iteration count so one sample runs ≥ ~2 ms,
//! 2. takes a fixed number of samples (median-of-N over
//!    [`std::time::Instant`]),
//! 3. reports the median/min/max per-iteration time.
//!
//! `finish` prints an aligned table and writes the results as
//! `BENCH_<suite>.json` (into `BULK_BENCH_OUT` if set, else the working
//! directory — for `cargo bench` that is the crate root,
//! `crates/bench/`). The JSON is hand-rolled: the workspace is hermetic
//! and takes no serialization dependency for five fields.
//!
//! Positional command-line arguments filter benchmarks by substring of
//! `group/id`, mirroring `cargo bench <filter>`; `--…` flags that cargo
//! forwards (e.g. `--bench`) are ignored.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples per benchmark; the reported time is the median.
const SAMPLES: usize = 15;
/// Minimum measured duration of one sample during calibration.
const MIN_SAMPLE: Duration = Duration::from_millis(2);
/// Iteration-count ceiling, for routines in the low nanoseconds.
const MAX_ITERS: u64 = 1 << 22;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark group (e.g. `"insert"`).
    pub group: String,
    /// Benchmark id within the group (e.g. `"S14"`).
    pub id: String,
    /// Iterations per sample.
    pub iters: u64,
    /// Median per-iteration time over all samples, in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's per-iteration time, in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time, in nanoseconds.
    pub max_ns: f64,
}

/// A named collection of benchmarks, written out as one
/// `BENCH_<suite>.json`.
pub struct BenchSuite {
    name: &'static str,
    filters: Vec<String>,
    results: Vec<BenchResult>,
    metrics: Option<MetricsBlock>,
}

/// The self-describing metrics attachment: which substrate produced the
/// numbers, under which seed, and the registry snapshot itself.
struct MetricsBlock {
    runtime: String,
    seed: u64,
    json: String,
}

impl BenchSuite {
    /// Creates a suite, taking benchmark name filters from `argv`
    /// (ignoring the flags `cargo bench` forwards).
    pub fn from_args(name: &'static str) -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        BenchSuite { name, filters, results: Vec::new(), metrics: None }
    }

    /// Creates an unfiltered suite. Figure/table binaries use this to
    /// write a `BENCH_<name>.json` carrying only the metrics block (their
    /// output is a table, not timings).
    pub fn named(name: &'static str) -> Self {
        BenchSuite { name, filters: Vec::new(), results: Vec::new(), metrics: None }
    }

    /// Attaches a metrics registry snapshot to the suite: its contents are
    /// embedded as a `"metrics"` object in `BENCH_<suite>.json`, and the
    /// file gains top-level `"runtime"` and `"seed"` keys so every metrics
    /// artifact — bench or CLI — is self-describing the same way. Bench
    /// targets run one small instrumented scenario (untimed) so every
    /// results file carries the observability counters alongside the
    /// timings.
    pub fn set_metrics(&mut self, runtime: &str, seed: u64, registry: &bulk_obs::Registry) {
        self.metrics = Some(MetricsBlock {
            runtime: runtime.to_string(),
            seed,
            json: registry.to_json_indented("  "),
        });
    }

    fn selected(&self, group: &str, id: &str) -> bool {
        let full = format!("{group}/{id}");
        self.filters.is_empty() || self.filters.iter().any(|f| full.contains(f.as_str()))
    }

    /// Measures `routine` called back-to-back (state may persist across
    /// calls, as with criterion's `Bencher::iter`).
    pub fn bench<R>(&mut self, group: &str, id: impl ToString, mut routine: impl FnMut() -> R) {
        let id = id.to_string();
        if !self.selected(group, &id) {
            return;
        }
        let iters = calibrate(&mut routine);
        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        self.push(group, id, iters, &mut per_iter);
    }

    /// Measures `routine` on a fresh `setup()` value per call, timing only
    /// the routine (as with criterion's `iter_batched`). Use when the
    /// routine consumes or mutates its input.
    pub fn bench_batched<S, R>(
        &mut self,
        group: &str,
        id: impl ToString,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        let id = id.to_string();
        if !self.selected(group, &id) {
            return;
        }
        let mut timed = move || {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        };
        // Calibrate on the timed portion only.
        let once = timed().max(Duration::from_nanos(20));
        let iters = (MIN_SAMPLE.as_nanos() / once.as_nanos()).max(1) as u64;
        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let total: Duration = (0..iters).map(|_| timed()).sum();
                total.as_nanos() as f64 / iters as f64
            })
            .collect();
        self.push(group, id, iters, &mut per_iter);
    }

    fn push(&mut self, group: &str, id: String, iters: u64, per_iter: &mut [f64]) {
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let result = BenchResult {
            group: group.to_string(),
            id,
            iters,
            median_ns: median,
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        };
        eprintln!(
            "{:<40} {:>14} median {:>12} .. {:>12}",
            format!("{}/{}", result.group, result.id),
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            fmt_ns(result.max_ns),
        );
        self.results.push(result);
    }

    /// Prints the summary table and writes `BENCH_<suite>.json`.
    pub fn finish(self) {
        let path = match std::env::var_os("BULK_BENCH_OUT") {
            Some(dir) => std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name)),
            None => std::path::PathBuf::from(format!("BENCH_{}.json", self.name)),
        };
        let json = self.to_json();
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("\nwrote {} ({} benchmarks)", path.display(), self.results.len()),
            Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
        }
    }

    /// The suite as a JSON document (`BENCH_*.json` format).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", self.name));
        if let Some(m) = &self.metrics {
            out.push_str(&format!("  \"runtime\": \"{}\",\n", escape(&m.runtime)));
            out.push_str(&format!("  \"seed\": {},\n", m.seed));
        }
        out.push_str(&format!("  \"samples_per_bench\": {SAMPLES},\n"));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"bench\": \"{}\", \"iters\": {}, \
                 \"median_ns\": {:.2}, \"min_ns\": {:.2}, \"max_ns\": {:.2}}}{}\n",
                escape(&r.group),
                escape(&r.id),
                r.iters,
                r.median_ns,
                r.min_ns,
                r.max_ns,
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        match &self.metrics {
            Some(m) => out.push_str(&format!("  \"metrics\": {}\n", m.json)),
            None => out.push_str("  \"metrics\": null\n"),
        }
        out.push_str("}\n");
        out
    }

    /// Measured results so far (exposed for the harness's own tests).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Picks an iteration count whose total runtime is at least [`MIN_SAMPLE`].
fn calibrate<R>(routine: &mut impl FnMut() -> R) -> u64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let took = start.elapsed();
        if took >= MIN_SAMPLE || iters >= MAX_ITERS {
            // Scale so one sample lands near MIN_SAMPLE.
            let per = (took.as_nanos() as u64 / iters).max(1);
            return (MIN_SAMPLE.as_nanos() as u64 / per).clamp(1, MAX_ITERS);
        }
        iters *= 4;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes() {
        let mut suite = BenchSuite {
            name: "selftest",
            filters: Vec::new(),
            results: Vec::new(),
            metrics: None,
        };
        let mut x = 0u64;
        suite.bench("group", "spin", || {
            x = x.wrapping_add(1);
            black_box(x)
        });
        suite.bench_batched(
            "group",
            "batched",
            || vec![1u64; 64],
            |v| v.into_iter().sum::<u64>(),
        );
        assert_eq!(suite.results().len(), 2);
        for r in suite.results() {
            assert!(r.median_ns > 0.0);
            assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
            assert!(r.iters >= 1);
        }
        let json = suite.to_json();
        assert!(json.contains("\"suite\": \"selftest\""));
        assert!(json.contains("\"bench\": \"spin\""));
        assert!(json.contains("\"median_ns\""));
    }

    #[test]
    fn filters_select_by_substring() {
        let mut suite = BenchSuite {
            name: "filters",
            filters: vec!["keep".to_string()],
            results: Vec::new(),
            metrics: None,
        };
        suite.bench("group", "keep_this", || black_box(1));
        suite.bench("group", "drop_this", || black_box(1));
        assert_eq!(suite.results().len(), 1);
        assert_eq!(suite.results()[0].id, "keep_this");
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn metrics_block_is_embedded() {
        let mut suite = BenchSuite {
            name: "metrics",
            filters: Vec::new(),
            results: Vec::new(),
            metrics: None,
        };
        assert!(suite.to_json().contains("\"metrics\": null"));
        let reg = bulk_obs::Registry::new();
        reg.counter("bench.scenario.squashes").add(7);
        suite.set_metrics("sim", 42, &reg);
        let json = suite.to_json();
        assert!(json.contains("\"metrics\": {"));
        assert!(json.contains("\"bench.scenario.squashes\": 7"));
        assert!(!json.contains("\"metrics\": null"));
        // The file is self-describing: substrate and seed ride along as
        // top-level keys, matching the CLI's --metrics-out wrapper.
        assert!(json.contains("\"runtime\": \"sim\""));
        assert!(json.contains("\"seed\": 42"));
    }
}
