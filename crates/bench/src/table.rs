//! Plain-text table formatting and small numeric helpers for the
//! experiment binaries.

/// Geometric mean of strictly positive values. Returns 0 for empty input.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(values.iter().all(|&v| v > 0.0), "geomean needs positive values");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Prints an aligned table: header row, separator, then rows. Column
/// widths fit the widest cell.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        println!("{}", parts.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_known_values() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn fmt_f_precision() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(2.0, 0), "2");
    }

    #[test]
    fn print_table_smoke() {
        print_table(
            &["App", "X"],
            &[vec!["a".into(), "1.0".into()], vec!["bb".into(), "2.5".into()]],
        );
    }
}
