//! Per-application experiment runners shared by the figure/table binaries.

use bulk_sim::SimConfig;
use bulk_tls::{run_tls, run_tls_sequential, TlsScheme, TlsStats};
use bulk_tm::{run_tm, Scheme, TmStats};
use bulk_trace::{profiles, TlsProfile, TmProfile};

/// Results of running one TLS application under every scheme of Fig. 10.
#[derive(Debug, Clone)]
pub struct TlsAppResult {
    /// Application name.
    pub name: String,
    /// Sequential-execution cycles (the speedup baseline).
    pub seq_cycles: u64,
    /// Statistics per scheme, in [`TlsScheme::ALL`] order.
    pub eager: TlsStats,
    /// See [`TlsAppResult::eager`].
    pub lazy: TlsStats,
    /// See [`TlsAppResult::eager`].
    pub bulk: TlsStats,
    /// See [`TlsAppResult::eager`].
    pub bulk_no_overlap: TlsStats,
}

impl TlsAppResult {
    /// Speedup of a scheme's run over sequential execution.
    pub fn speedup(&self, scheme: TlsScheme) -> f64 {
        let cycles = match scheme {
            TlsScheme::Eager => self.eager.cycles,
            TlsScheme::Lazy => self.lazy.cycles,
            TlsScheme::Bulk => self.bulk.cycles,
            TlsScheme::BulkNoOverlap => self.bulk_no_overlap.cycles,
        };
        self.seq_cycles as f64 / cycles as f64
    }
}

/// The workload seeds experiments aggregate over (squash cascades make
/// single runs noisy; summing a few seeds stabilises every ratio).
pub const SEEDS: [u64; 5] = [42, 43, 44, 45, 46];

/// Runs one TLS application profile under sequential execution and all
/// four schemes, aggregating statistics over [`SEEDS`] starting at `seed`.
pub fn run_tls_app(profile: &TlsProfile, seed: u64, cfg: &SimConfig) -> TlsAppResult {
    let mut out: Option<TlsAppResult> = None;
    for s in SEEDS.iter().map(|d| seed ^ d) {
        let wl = profile.generate(s);
        let one = TlsAppResult {
            name: profile.name.to_string(),
            seq_cycles: run_tls_sequential(&wl, cfg),
            eager: run_tls(&wl, TlsScheme::Eager, cfg),
            lazy: run_tls(&wl, TlsScheme::Lazy, cfg),
            bulk: run_tls(&wl, TlsScheme::Bulk, cfg),
            bulk_no_overlap: run_tls(&wl, TlsScheme::BulkNoOverlap, cfg),
        };
        match &mut out {
            None => out = Some(one),
            Some(acc) => {
                acc.seq_cycles += one.seq_cycles;
                acc.eager.merge(&one.eager);
                acc.lazy.merge(&one.lazy);
                acc.bulk.merge(&one.bulk);
                acc.bulk_no_overlap.merge(&one.bulk_no_overlap);
            }
        }
    }
    out.expect("at least one seed")
}

/// Runs every TLS application of the paper (Table 6 / Fig. 10).
pub fn run_all_tls(seed: u64, cfg: &SimConfig) -> Vec<TlsAppResult> {
    profiles::tls_profiles()
        .iter()
        .map(|p| run_tls_app(p, seed, cfg))
        .collect()
}

/// Results of running one TM application under the Fig. 11 schemes.
#[derive(Debug, Clone)]
pub struct TmAppResult {
    /// Application name.
    pub name: String,
    /// Conventional eager (with forward-progress fix).
    pub eager: TmStats,
    /// Conventional lazy (exact).
    pub lazy: TmStats,
    /// The paper's Bulk.
    pub bulk: TmStats,
    /// Bulk with partial rollback of nested transactions.
    pub bulk_partial: TmStats,
}

impl TmAppResult {
    /// Speedup of a scheme over Eager (the Fig. 11 normalization).
    pub fn speedup_over_eager(&self, scheme: Scheme) -> f64 {
        let cycles = match scheme {
            Scheme::EagerNaive | Scheme::Eager => self.eager.cycles,
            Scheme::Lazy => self.lazy.cycles,
            Scheme::Bulk => self.bulk.cycles,
            Scheme::BulkPartial => self.bulk_partial.cycles,
        };
        self.eager.cycles as f64 / cycles as f64
    }
}

/// Runs one TM application profile under the four Fig. 11 schemes,
/// aggregating statistics over [`SEEDS`] starting at `seed`.
pub fn run_tm_app(profile: &TmProfile, seed: u64, cfg: &SimConfig) -> TmAppResult {
    let mut out: Option<TmAppResult> = None;
    for s in SEEDS.iter().map(|d| seed ^ d) {
        let wl = profile.generate(s);
        let one = TmAppResult {
            name: profile.name.to_string(),
            eager: run_tm(&wl, Scheme::Eager, cfg),
            lazy: run_tm(&wl, Scheme::Lazy, cfg),
            bulk: run_tm(&wl, Scheme::Bulk, cfg),
            bulk_partial: run_tm(&wl, Scheme::BulkPartial, cfg),
        };
        match &mut out {
            None => out = Some(one),
            Some(acc) => {
                acc.eager.merge(&one.eager);
                acc.lazy.merge(&one.lazy);
                acc.bulk.merge(&one.bulk);
                acc.bulk_partial.merge(&one.bulk_partial);
            }
        }
    }
    out.expect("at least one seed")
}

/// Runs every TM application of the paper (Table 7 / Figs. 11, 13, 14).
pub fn run_all_tm(seed: u64, cfg: &SimConfig) -> Vec<TmAppResult> {
    profiles::tm_profiles()
        .iter()
        .map(|p| run_tm_app(p, seed, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tls_runner_produces_speedups() {
        let p = profiles::tls_profile("mcf").unwrap();
        let r = run_tls_app(&p, 1, &SimConfig::tls_default());
        for s in TlsScheme::ALL {
            assert!(r.speedup(s) > 0.5, "{s}: {}", r.speedup(s));
        }
    }

    #[test]
    fn tm_runner_normalizes_to_eager() {
        let p = profiles::tm_profile("sjbb2k").unwrap();
        let r = run_tm_app(&p, 1, &SimConfig::tm_default());
        assert!((r.speedup_over_eager(Scheme::Eager) - 1.0).abs() < 1e-12);
        assert!(r.speedup_over_eager(Scheme::Bulk) > 0.3);
    }
}
