//! Ablation: how much Partial Overlap (§6.3) is worth as a function of
//! how much parent→child live-in forwarding a workload does — the design
//! choice behind the Fig. 10 `BulkNoOverlap` bar, swept.

use bulk_bench::{fmt_f, print_table};
use bulk_sim::SimConfig;
use bulk_tls::{run_tls, run_tls_sequential, TlsScheme};
use bulk_trace::profiles;

fn main() {
    let cfg = SimConfig::tls_default();
    println!("Ablation — Partial Overlap benefit vs live-in consumption (app: parser)\n");
    let base = profiles::tls_profile("parser").expect("profile");

    let mut rows = Vec::new();
    for live_in_prob in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let mut p = base.clone();
        p.live_in_prob = live_in_prob;
        let wl = p.generate(42);
        let seq = run_tls_sequential(&wl, &cfg);
        let with = run_tls(&wl, TlsScheme::Bulk, &cfg);
        let without = run_tls(&wl, TlsScheme::BulkNoOverlap, &cfg);
        rows.push(vec![
            fmt_f(live_in_prob, 2),
            fmt_f(seq as f64 / with.cycles as f64, 2),
            fmt_f(seq as f64 / without.cycles as f64, 2),
            with.squashes.to_string(),
            without.squashes.to_string(),
            fmt_f(
                100.0 * (1.0 - with.cycles as f64 / without.cycles as f64),
                1,
            ),
        ]);
    }
    print_table(
        &[
            "LiveInProb",
            "Bulk speedup",
            "NoOverlap speedup",
            "Bulk squashes",
            "NoOverlap squashes",
            "Overlap gain (%)",
        ],
        &rows,
    );
    println!();
    println!("With no live-in consumption the two schemes coincide; as fine-grain");
    println!("parent→child sharing grows, NoOverlap squashes nearly every task at");
    println!("its parent's commit while the shadow signature keeps Bulk unharmed.");
    bulk_bench::write_summary("ablation_overlap");
}
