//! `bulk-bench-diff` — the bench regression gate.
//!
//! Compares every `BENCH_*.json` in `--baseline-dir` against its
//! counterpart in `--fresh-dir` and exits nonzero when any benchmark
//! regressed past the tolerance (or disappeared). CI runs this after the
//! bench suites with the committed baselines in `crates/bench/baselines/`:
//!
//! ```text
//! BULK_BENCH_OUT=fresh cargo bench -p bulk-bench
//! cargo run -p bulk-bench --bin bench_diff -- \
//!     --baseline-dir crates/bench/baselines --fresh-dir fresh
//! ```

use std::process::ExitCode;

use bulk_bench::regress::{diff_dirs, DEFAULT_TOLERANCE};

const USAGE: &str = "\
bench_diff — compare fresh BENCH_*.json results against a baseline

USAGE:
  bench_diff --baseline-dir <dir> --fresh-dir <dir> [--tolerance <f>]

  --tolerance <f>  allowed slowdown fraction before a benchmark counts as
                   regressed (default 3.0: fresh medians may be up to 4x
                   the baseline). Exits 1 on any regression or missing
                   suite, 2 on bad invocation.
";

fn parse_args() -> Result<(String, String, f64), String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("flag {flag} needs a value"));
        match flag.as_str() {
            "--baseline-dir" => baseline = Some(value()?),
            "--fresh-dir" => fresh = Some(value()?),
            "--tolerance" => {
                let v = value()?;
                tolerance = v.parse().map_err(|_| format!("--tolerance: bad number `{v}`"))?;
                if tolerance < 0.0 {
                    return Err("--tolerance must be non-negative".into());
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok((
        baseline.ok_or("--baseline-dir is required")?,
        fresh.ok_or("--fresh-dir is required")?,
        tolerance,
    ))
}

fn main() -> ExitCode {
    let (baseline, fresh, tolerance) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match diff_dirs(baseline.as_ref(), fresh.as_ref(), tolerance) {
        Ok((regressions, suites)) if regressions.is_empty() => {
            println!("bench-diff: {suites} suite(s) within tolerance {tolerance} — no regressions");
            ExitCode::SUCCESS
        }
        Ok((regressions, suites)) => {
            for r in &regressions {
                eprintln!("REGRESSION {r}");
            }
            eprintln!(
                "bench-diff: {} regression(s) across {suites} suite(s) at tolerance {tolerance}",
                regressions.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
