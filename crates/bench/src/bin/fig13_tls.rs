//! TLS bandwidth breakdown — the companion to Figure 13 that the paper
//! omits for space ("For TLS, we obtain qualitatively similar conclusions.
//! We do not show data due to space limitations."). Same format as `fig13`,
//! normalized to Eager's total per application.

use bulk_bench::{fmt_f, print_table, run_all_tls};
use bulk_mem::MsgClass;
use bulk_sim::SimConfig;

fn main() {
    let cfg = SimConfig::tls_default();
    println!("Figure 13 (TLS companion) — bandwidth breakdown, % of Eager's total\n");
    let results = run_all_tls(42, &cfg);

    let mut rows = Vec::new();
    let mut totals = [0.0f64; 3];
    for r in &results {
        let eager_total = r.eager.bw.total() as f64;
        for (si, (label, bw)) in
            [("E", &r.eager.bw), ("L", &r.lazy.bw), ("B", &r.bulk.bw)].iter().enumerate()
        {
            let mut row = vec![r.name.clone(), label.to_string()];
            for class in MsgClass::ALL {
                row.push(fmt_f(100.0 * bw.bytes(class) as f64 / eager_total, 1));
            }
            let total_pct = 100.0 * bw.total() as f64 / eager_total;
            totals[si] += total_pct;
            row.push(fmt_f(total_pct, 1));
            rows.push(row);
        }
    }
    print_table(&["App", "Sch", "Inv", "Coh", "UB", "WB", "Fill", "Total"], &rows);
    let n = results.len() as f64;
    println!();
    println!(
        "Average totals vs Eager: E={:.1}%  L={:.1}%  B={:.1}%",
        totals[0] / n,
        totals[1] / n,
        totals[2] / n
    );

    // Commit bandwidth, Bulk vs Lazy, as in Fig. 14 but for TLS.
    let mut sum = 0.0;
    for r in &results {
        sum += 100.0 * r.bulk.bw.commit_bytes() as f64 / r.lazy.bw.commit_bytes() as f64;
    }
    println!(
        "TLS commit bandwidth, Bulk/Lazy average: {:.1}% (signatures + shadow signatures \
         vs word-address enumerations)",
        sum / n
    );
    bulk_bench::write_summary("fig13_tls");
}
