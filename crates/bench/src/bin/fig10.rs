//! Figure 10: TLS performance of Eager, Lazy, Bulk and BulkNoOverlap on
//! the SPECint2000 stand-ins, as speedup over sequential execution.

use bulk_bench::{fmt_f, geomean, print_table, run_all_tls};
use bulk_sim::SimConfig;
use bulk_tls::TlsScheme;

fn main() {
    let cfg = SimConfig::tls_default();
    println!("Figure 10 — TLS speedup over sequential (4 processors, S14 word signatures)\n");
    let results = run_all_tls(42, &cfg);

    let mut rows = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for r in &results {
        let s: Vec<f64> = TlsScheme::ALL.iter().map(|&sc| r.speedup(sc)).collect();
        for (i, v) in s.iter().enumerate() {
            cols[i].push(*v);
        }
        rows.push(vec![
            r.name.clone(),
            fmt_f(s[0], 2),
            fmt_f(s[1], 2),
            fmt_f(s[2], 2),
            fmt_f(s[3], 2),
        ]);
    }
    rows.push(vec![
        "Geo.Mean".into(),
        fmt_f(geomean(&cols[0]), 2),
        fmt_f(geomean(&cols[1]), 2),
        fmt_f(geomean(&cols[2]), 2),
        fmt_f(geomean(&cols[3]), 2),
    ]);
    print_table(
        &["App", "TLS-Eager", "TLS-Lazy", "TLS-Bulk", "TLS-BulkNoOverlap"],
        &rows,
    );

    let gm: Vec<f64> = cols.iter().map(|c| geomean(c)).collect();
    println!();
    println!("Shape checks against the paper:");
    println!(
        "  Bulk vs Eager slowdown:      {:.1}% (paper: ~5%)",
        100.0 * (1.0 - gm[2] / gm[0])
    );
    println!(
        "  BulkNoOverlap below Bulk:    {:.1}% (paper: ~17%)",
        100.0 * (1.0 - gm[3] / gm[2])
    );
    println!(
        "  Ordering Eager >= Lazy >= Bulk > BulkNoOverlap: {}",
        gm[0] >= gm[1] && gm[1] >= gm[2] * 0.995 && gm[2] > gm[3]
    );
    bulk_bench::write_summary("fig10");
}
