//! Ablation: end-to-end impact of the signature configuration on TM
//! performance — the paper's closing claim that "signature configuration
//! is a key design parameter", measured on the running system rather than
//! on sampled disambiguations (complements `fig15`).

use bulk_bench::{fmt_f, print_table};
use bulk_sig::{table8_spec, BitPermutation, Granularity, SignatureConfig};
use bulk_sim::SimConfig;
use bulk_tm::{Scheme, TmMachine};
use bulk_trace::profiles;

fn main() {
    let cfg = SimConfig::tm_default();
    println!("Ablation — TM performance vs signature configuration (app: lu)\n");
    let p = profiles::tm_profile("lu").expect("profile");
    let wl = p.generate(42);

    // Exact Lazy as the reference point.
    let lazy = bulk_tm::run_tm(&wl, Scheme::Lazy, &cfg);

    let mut rows = Vec::new();
    for id in ["S1", "S4", "S9", "S12", "S14", "S17", "S19", "S23"] {
        let spec = table8_spec(id).expect("catalog id");
        let sig = SignatureConfig::from_spec(
            spec,
            BitPermutation::paper_tm(),
            Granularity::Line,
            64,
        );
        let stats = TmMachine::with_signature(&wl, Scheme::Bulk, &cfg, sig).run();
        rows.push(vec![
            id.to_string(),
            spec.full_size_bits().to_string(),
            stats.squashes.to_string(),
            stats.false_squashes.to_string(),
            fmt_f(100.0 * stats.false_squash_frac(), 1),
            fmt_f(lazy.cycles as f64 / stats.cycles as f64, 3),
        ]);
    }
    rows.push(vec![
        "Lazy".into(),
        "exact".into(),
        lazy.squashes.to_string(),
        "0".into(),
        "0.0".into(),
        "1.000".into(),
    ]);
    print_table(
        &["Config", "Bits", "Squashes", "False", "Sq(%)", "Speedup vs Lazy"],
        &rows,
    );
    println!();
    println!("Small signatures pay real performance for their aliasing;");
    println!("beyond ~2 Kbit (S14) the returns flatten — the paper's sweet spot.");
    bulk_bench::write_summary("ablation_sigsize");
}
