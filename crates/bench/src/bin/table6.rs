//! Table 6: characterization of Bulk in TLS — task footprints, false
//! positives, and Set Restriction costs, next to the paper's values.

use bulk_bench::{fmt_f, print_table};
use bulk_sim::SimConfig;
use bulk_tls::{run_tls, TlsScheme};
use bulk_trace::profiles;

/// One reference row of the paper's Table 6:
/// (app, rd, wr, dep, sq%, false-inv/com, safe-wb/task, wrwr/1k).
type PaperRow = (&'static str, f64, f64, f64, f64, f64, f64, f64);

const PAPER: &[PaperRow] = &[
    ("bzip2", 30.2, 4.9, 1.0, 10.5, 0.1, 2.9, 0.1),
    ("crafty", 109.0, 23.2, 2.6, 16.5, 0.0, 11.5, 0.3),
    ("gap", 42.4, 13.4, 6.6, 0.4, 0.5, 3.7, 0.0),
    ("gzip", 14.3, 4.8, 2.0, 1.4, 0.0, 1.5, 0.0),
    ("mcf", 12.3, 0.7, 1.0, 1.1, 0.0, 0.4, 0.0),
    ("parser", 29.6, 7.1, 2.3, 2.1, 0.1, 2.2, 5.5),
    ("twolf", 41.1, 6.4, 1.4, 14.0, 0.3, 6.3, 0.2),
    ("vortex", 34.7, 23.5, 3.6, 10.4, 0.3, 6.4, 31.6),
    ("vpr", 43.1, 8.7, 1.1, 5.6, 0.5, 4.1, 0.0),
];

fn main() {
    let cfg = SimConfig::tls_default();
    println!("Table 6 — Characterization of Bulk in TLS (measured | paper)\n");
    let mut rows = Vec::new();
    for p in profiles::tls_profiles() {
        let wl = p.generate(42);
        let s = run_tls(&wl, TlsScheme::Bulk, &cfg);
        let paper = PAPER.iter().find(|r| r.0 == p.name).expect("paper row");
        rows.push(vec![
            p.name.to_string(),
            format!("{} | {}", fmt_f(s.avg_rd_set(), 1), paper.1),
            format!("{} | {}", fmt_f(s.avg_wr_set(), 1), paper.2),
            format!("{} | {}", fmt_f(s.avg_dep_set(), 1), paper.3),
            format!("{} | {}", fmt_f(100.0 * s.false_squash_frac(), 1), paper.4),
            format!("{} | {}", fmt_f(s.false_inv_per_commit(), 1), paper.5),
            format!("{} | {}", fmt_f(s.safe_wb_per_task(), 1), paper.6),
            format!("{} | {}", fmt_f(s.wr_wr_per_1k_tasks(), 1), paper.7),
        ]);
    }
    print_table(
        &[
            "App",
            "RdSet(W)",
            "WrSet(W)",
            "DepSet(W)",
            "Sq(%)",
            "FalseInv/Com",
            "SafeWB/Tsk",
            "WrWr/1kTsk",
        ],
        &rows,
    );
    println!("\n  Columns show measured | paper. Footprints are generator-calibrated;");
    println!("  aliasing and Set-Restriction columns emerge from the simulation.");
    bulk_bench::write_summary("table6");
}
