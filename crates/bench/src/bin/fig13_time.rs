//! Figure 13 (time view): where the cycles go, per application, from the
//! cycle-accounting profiler — the trace-derived split of every thread's
//! timeline into useful work, squashed work, commit, stall/backoff,
//! protocol overhead and idle remainder.
//!
//! The paper's Fig. 13 breaks down *bandwidth*; this companion breaks
//! down *time* using the causal span trace (`--trace-out` in the CLI),
//! so squash-heavy applications show their re-execution tax directly.

use std::sync::Arc;

use bulk_bench::{fmt_f, print_table};
use bulk_obs::{CycleBreakdown, Obs};
use bulk_sim::SimConfig;
use bulk_tls::{run_tls_observed, TlsScheme};
use bulk_tm::{run_tm_observed, Scheme};
use bulk_trace::profiles;

fn breakdown(obs: &Obs, prefix: &str) -> CycleBreakdown {
    let c = |n: &str| obs.registry().counter_value(&format!("{prefix}cycles.{n}"));
    CycleBreakdown {
        useful: c("useful"),
        squashed: c("squashed"),
        commit: c("commit"),
        stall: c("stall"),
        overhead: c("overhead"),
        other: c("other"),
        commit_bus: c("commit_bus"),
        total: c("total"),
        violations: Vec::new(),
    }
}

fn row(name: &str, machine: &str, b: &CycleBreakdown) -> Vec<String> {
    let pct = |v: u64| fmt_f(100.0 * v as f64 / b.total.max(1) as f64, 1);
    vec![
        name.to_string(),
        machine.to_string(),
        pct(b.useful),
        pct(b.squashed),
        pct(b.commit),
        pct(b.stall),
        pct(b.overhead),
        pct(b.other),
        b.total.to_string(),
    ]
}

fn main() {
    println!("Figure 13 (time) — cycle breakdown per app under Bulk, % of all thread cycles\n");
    let mut rows = Vec::new();
    let tm_cfg = SimConfig::tm_default();
    for p in profiles::tm_profiles() {
        let obs = Arc::new(Obs::new());
        run_tm_observed(&p.generate(42), Scheme::Bulk, &tm_cfg, Arc::clone(&obs));
        let b = breakdown(&obs, "tm.");
        assert!(b.conserves(), "{}: cycle accounting must conserve", p.name);
        rows.push(row(p.name, "TM", &b));
    }
    let tls_cfg = SimConfig::tls_default();
    for p in profiles::tls_profiles() {
        let obs = Arc::new(Obs::new());
        run_tls_observed(&p.generate(42), TlsScheme::Bulk, &tls_cfg, Arc::clone(&obs));
        let b = breakdown(&obs, "tls.");
        assert!(b.conserves(), "{}: cycle accounting must conserve", p.name);
        rows.push(row(p.name, "TLS", &b));
    }
    print_table(
        &["App", "Mach", "Useful", "Squash", "Commit", "Stall", "Ovhd", "Other", "Cycles"],
        &rows,
    );
    println!();
    println!("Conservation: the six columns sum to 100% of every app's thread cycles.");
    bulk_bench::write_summary("fig13_time");
}
