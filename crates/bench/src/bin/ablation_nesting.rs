//! Ablation: partial rollback of nested transactions (§6.2.1) versus flat
//! Bulk, as transaction nesting becomes more common. The paper found the
//! benefit minor at its workloads' low nesting rates; this sweep shows
//! where the mechanism starts paying.

use bulk_bench::{fmt_f, print_table};
use bulk_sim::SimConfig;
use bulk_tm::{run_tm, Scheme};
use bulk_trace::profiles;

fn main() {
    let cfg = SimConfig::tm_default();
    println!("Ablation — partial rollback benefit vs nesting frequency (app: mc)\n");
    let base = profiles::tm_profile("mc").expect("profile");

    let mut rows = Vec::new();
    for nest_prob in [0.0, 0.12, 0.3, 0.6, 0.9] {
        let mut p = base.clone();
        p.nest_prob = nest_prob;
        let wl = p.generate(42);
        let flat = run_tm(&wl, Scheme::Bulk, &cfg);
        let partial = run_tm(&wl, Scheme::BulkPartial, &cfg);
        rows.push(vec![
            fmt_f(nest_prob, 2),
            flat.squashes.to_string(),
            partial.squashes.to_string(),
            partial.partial_rollbacks.to_string(),
            fmt_f(partial.sections_rolled_back as f64
                / partial.partial_rollbacks.max(1) as f64, 1),
            fmt_f(flat.cycles as f64 / partial.cycles as f64, 3),
        ]);
    }
    print_table(
        &[
            "NestProb",
            "Flat squashes",
            "Partial squashes",
            "Rollbacks",
            "Secs/rollback",
            "Partial speedup",
        ],
        &rows,
    );
    println!();
    println!("Partial rollback converts full squashes into section restarts; the");
    println!("gain tracks how often conflicts land in inner sections — minor at");
    println!("the paper's low nesting rates, growing with nesting frequency.");
    bulk_bench::write_summary("ablation_nesting");
}
