//! Figure 15: fraction of false positives in bulk address disambiguations
//! known to carry no dependence, per signature configuration, with error
//! segments over bit permutations.

use bulk_bench::{fmt_f, print_table, sweep_config};
use bulk_sig::table8;

fn main() {
    println!("Figure 15 — False positives per signature configuration (%)\n");
    let trials = 2_000;
    let perms = 4;
    let mut rows = Vec::new();
    let mut prev_size_fp: Vec<(u64, f64)> = Vec::new();
    for spec in table8() {
        let s = sweep_config(*spec, trials, perms, 42);
        prev_size_fp.push((s.full_bits, s.fp_identity));
        rows.push(vec![
            s.id.to_string(),
            s.full_bits.to_string(),
            fmt_f(100.0 * s.fp_identity, 1),
            fmt_f(100.0 * s.fp_best, 1),
            fmt_f(100.0 * s.fp_worst, 1),
        ]);
    }
    print_table(
        &["ID", "Bits", "FP% (no perm)", "FP% best perm", "FP% worst perm"],
        &rows,
    );

    // Shape check: false positives fall as signature size grows.
    let small: f64 = prev_size_fp
        .iter()
        .filter(|(b, _)| *b <= 1024)
        .map(|(_, f)| f)
        .sum::<f64>()
        / prev_size_fp.iter().filter(|(b, _)| *b <= 1024).count() as f64;
    let large: f64 = prev_size_fp
        .iter()
        .filter(|(b, _)| *b >= 4096)
        .map(|(_, f)| f)
        .sum::<f64>()
        / prev_size_fp.iter().filter(|(b, _)| *b >= 4096).count() as f64;
    println!();
    println!(
        "Mean FP small configs (<=1Kbit): {:.1}%   large configs (>=4Kbit): {:.1}%",
        100.0 * small,
        100.0 * large
    );
    println!("Shape check (paper): high for small signatures, quickly decreasing;");
    println!("permutation choice shifts accuracy significantly (error segments).");
    bulk_bench::write_summary("fig15");
}
