//! Figure 13: TM bandwidth-usage breakdown (Inv/Coh/UB/WB/Fill) for
//! Eager, Lazy and Bulk, normalized to Eager's total per application.

use bulk_bench::{fmt_f, print_table, run_all_tm};
use bulk_mem::MsgClass;
use bulk_sim::SimConfig;

fn main() {
    let cfg = SimConfig::tm_default();
    println!("Figure 13 — TM bandwidth breakdown, % of Eager's total per app\n");
    let results = run_all_tm(42, &cfg);

    let mut rows = Vec::new();
    let mut totals = [0.0f64; 3];
    for r in &results {
        let eager_total = r.eager.bw.total() as f64;
        for (si, (label, bw)) in
            [("E", &r.eager.bw), ("L", &r.lazy.bw), ("B", &r.bulk.bw)].iter().enumerate()
        {
            let mut row = vec![r.name.clone(), label.to_string()];
            for class in MsgClass::ALL {
                row.push(fmt_f(100.0 * bw.bytes(class) as f64 / eager_total, 1));
            }
            let total_pct = 100.0 * bw.total() as f64 / eager_total;
            totals[si] += total_pct;
            row.push(fmt_f(total_pct, 1));
            rows.push(row);
        }
    }
    print_table(
        &["App", "Sch", "Inv", "Coh", "UB", "WB", "Fill", "Total"],
        &rows,
    );
    let n = results.len() as f64;
    println!();
    println!("Average totals vs Eager: E={:.1}%  L={:.1}%  B={:.1}%", totals[0] / n, totals[1] / n, totals[2] / n);
    println!("Shape check (paper): Bulk slightly above Lazy, below or near Eager.");
    bulk_bench::write_summary("fig13");
}
