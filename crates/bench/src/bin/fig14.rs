//! Figure 14: commit bandwidth of Bulk (RLE-compressed signatures)
//! normalized to Lazy (address enumerations).

use bulk_bench::{fmt_f, print_table, run_all_tm};
use bulk_sim::SimConfig;

fn main() {
    let cfg = SimConfig::tm_default();
    println!("Figure 14 — Commit bandwidth of Bulk normalized to Lazy (%)\n");
    let results = run_all_tm(42, &cfg);

    let mut rows = Vec::new();
    let mut sum = 0.0;
    for r in &results {
        let pct = 100.0 * r.bulk.bw.commit_bytes() as f64 / r.lazy.bw.commit_bytes() as f64;
        sum += pct;
        rows.push(vec![
            r.name.clone(),
            r.lazy.bw.commit_bytes().to_string(),
            r.bulk.bw.commit_bytes().to_string(),
            fmt_f(pct, 1),
        ]);
    }
    let avg = sum / results.len() as f64;
    rows.push(vec!["Avg".into(), String::new(), String::new(), fmt_f(avg, 1)]);
    print_table(&["App", "Lazy (B)", "Bulk (B)", "Bulk/Lazy (%)"], &rows);
    println!();
    println!(
        "Average commit-bandwidth reduction: {:.1}% (paper: ~83%)",
        100.0 - avg
    );
    bulk_bench::write_summary("fig14");
}
