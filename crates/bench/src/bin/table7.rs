//! Table 7: characterization of Bulk in TM — transaction footprints, false
//! positives, Set Restriction cost and overflow-area accesses relative to
//! Lazy, next to the paper's values.

use bulk_bench::{fmt_f, print_table};
use bulk_sim::SimConfig;
use bulk_tm::{run_tm, Scheme};
use bulk_trace::profiles;

/// One reference row of the paper's Table 7:
/// (app, rd, wr, dep, sq%, false-inv/com, safe-wb/tr, overflow B/L %).
type PaperRow = (&'static str, f64, f64, f64, f64, f64, f64, f64);

const PAPER: &[PaperRow] = &[
    ("cb", 73.6, 26.9, 1.4, 20.0, 0.6, 1.5, 6.2),
    ("jgrt", 67.1, 22.1, 1.3, 22.1, 0.2, 0.5, 4.3),
    ("lu", 81.7, 27.3, 1.3, 12.8, 0.7, 0.8, 5.6),
    ("mc", 51.6, 17.6, 1.9, 9.8, 0.1, 2.6, 3.3),
    ("moldyn", 70.2, 25.1, 1.3, 10.7, 0.4, 0.4, 2.6),
    ("series", 86.9, 25.9, 1.1, 13.7, 0.1, 0.3, 2.1),
    ("sjbb2k", 41.6, 11.2, 1.4, 7.7, 0.1, 0.2, 0.8),
];

fn main() {
    let cfg = SimConfig::tm_default();
    println!("Table 7 — Characterization of Bulk in TM (measured | paper)\n");
    let mut rows = Vec::new();
    for p in profiles::tm_profiles() {
        let wl = p.generate(42);
        let bulk = run_tm(&wl, Scheme::Bulk, &cfg);
        let lazy = run_tm(&wl, Scheme::Lazy, &cfg);
        let overflow_ratio = if lazy.overflow_accesses > 0 {
            100.0 * bulk.overflow_accesses as f64 / lazy.overflow_accesses as f64
        } else {
            0.0
        };
        let paper = PAPER.iter().find(|r| r.0 == p.name).expect("paper row");
        rows.push(vec![
            p.name.to_string(),
            format!("{} | {}", fmt_f(bulk.avg_rd_set(), 1), paper.1),
            format!("{} | {}", fmt_f(bulk.avg_wr_set(), 1), paper.2),
            format!("{} | {}", fmt_f(bulk.avg_dep_set(), 1), paper.3),
            format!("{} | {}", fmt_f(100.0 * bulk.false_squash_frac(), 1), paper.4),
            format!("{} | {}", fmt_f(bulk.false_inv_per_commit(), 1), paper.5),
            format!("{} | {}", fmt_f(bulk.safe_wb_per_commit(), 1), paper.6),
            format!("{} | {}", fmt_f(overflow_ratio, 1), paper.7),
        ]);
    }
    print_table(
        &[
            "App",
            "RdSet(L)",
            "WrSet(L)",
            "DepSet(L)",
            "Sq(%)",
            "FalseInv/Com",
            "SafeWB/Tr",
            "Ovfl B/L(%)",
        ],
        &rows,
    );
    println!("\n  Columns show measured | paper. The Overflow column is Bulk's");
    println!("  overflow-area accesses as a percentage of Lazy's (paper avg: 3.6%).");
    bulk_bench::write_summary("table7");
}
