//! Table 8: the 23 signature configurations — chunk layout, full size, and
//! measured average RLE-compressed size on TM-like commit write sets.

use bulk_bench::{fmt_f, print_table, sweep_config};
use bulk_sig::table8;

/// The paper's average compressed sizes, for reference (bits).
const PAPER_COMPRESSED: &[(&str, u64)] = &[
    ("S1", 254),
    ("S2", 282),
    ("S3", 193),
    ("S4", 290),
    ("S5", 318),
    ("S6", 234),
    ("S7", 266),
    ("S8", 281),
    ("S9", 234),
    ("S10", 334),
    ("S11", 356),
    ("S12", 353),
    ("S13", 353),
    ("S14", 363),
    ("S15", 353),
    ("S16", 396),
    ("S17", 380),
    ("S18", 438),
    ("S19", 469),
    ("S20", 381),
    ("S21", 497),
    ("S22", 497),
    ("S23", 1219),
];

fn main() {
    println!("Table 8 — Signature configurations: size vs compressed size\n");
    let mut rows = Vec::new();
    for spec in table8() {
        let sample = sweep_config(*spec, 400, 0, 42);
        let paper = PAPER_COMPRESSED
            .iter()
            .find(|(id, _)| *id == spec.id)
            .map(|(_, b)| *b)
            .expect("paper row");
        rows.push(vec![
            spec.id.to_string(),
            spec.full_size_bits().to_string(),
            fmt_f(sample.avg_compressed_bits, 0),
            paper.to_string(),
            format!("{:?}", spec.chunks),
        ]);
    }
    print_table(
        &["ID", "Full (bits)", "Compressed (bits)", "Paper compressed", "Chunks"],
        &rows,
    );
    println!("\n  Compressed sizes use Elias-gamma gap RLE over ~22-line write sets");
    println!("  (the paper's RLE variant is unspecified; magnitudes and the");
    println!("  growth-with-size trend are the comparison target).");
    bulk_bench::write_summary("table8");
}
