//! Figure 12: the SPECjbb2000 code patterns where Eager suffers —
//! (a) no forward progress under naive Eager on transactional
//! read-modify-write contention, and (b) a squash that happens in Eager
//! but not in Lazy.

use bulk_bench::print_table;
use bulk_sim::SimConfig;
use bulk_tm::{run_tm, Scheme, TmMachine};
use bulk_trace::patterns::{fig12a_livelock, fig12b_eager_only_squash};

fn main() {
    let cfg = SimConfig::tm_default();

    println!("Figure 12(a) — two threads ld A / st A in a loop (50 iterations)\n");
    let wa = fig12a_livelock(50, 400);
    let mut rows = Vec::new();
    for scheme in [Scheme::EagerNaive, Scheme::Eager, Scheme::Lazy, Scheme::Bulk] {
        let stats = if scheme == Scheme::EagerNaive {
            let mut m = TmMachine::new(&wa, scheme, &cfg);
            m.set_squash_cap(5_000);
            m.run()
        } else {
            run_tm(&wa, scheme, &cfg)
        };
        rows.push(vec![
            scheme.to_string(),
            stats.commits.to_string(),
            stats.squashes.to_string(),
            stats.stalls.to_string(),
            if stats.livelocked { "LIVELOCK".into() } else { "ok".into() },
        ]);
    }
    print_table(&["Scheme", "Commits", "Squashes", "Stalls", "Progress"], &rows);
    println!(
        "\n  Naive Eager livelocks; the paper's fix (longer-running thread wins,\n  \
         other stalls) restores progress; Lazy/Bulk are immune.\n"
    );

    println!("Figure 12(b) — short reader tx vs long writer tx (10 iterations)\n");
    let wb = fig12b_eager_only_squash(10);
    let mut rows = Vec::new();
    for scheme in [Scheme::Eager, Scheme::Lazy, Scheme::Bulk] {
        let stats = run_tm(&wb, scheme, &cfg);
        rows.push(vec![
            scheme.to_string(),
            stats.commits.to_string(),
            stats.squashes.to_string(),
            stats.stalls.to_string(),
        ]);
    }
    print_table(&["Scheme", "Commits", "Squashes", "Stalls"], &rows);
    println!(
        "\n  Eager pays (squash or stall) on the conflict; Lazy commits the short\n  \
         reader before the writer's commit broadcast, avoiding the squash."
    );
    bulk_bench::write_summary("fig12");
}
