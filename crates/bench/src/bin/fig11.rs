//! Figure 11: TM performance of Eager, Lazy, Bulk and Bulk-Partial on the
//! Java-workload stand-ins, as speedup over Eager.

use bulk_bench::{fmt_f, geomean, print_table, run_all_tm};
use bulk_sim::SimConfig;
use bulk_tm::Scheme;

fn main() {
    let cfg = SimConfig::tm_default();
    println!("Figure 11 — TM speedup over Eager (8 processors, S14 line signatures)\n");
    let results = run_all_tm(42, &cfg);

    let schemes = [Scheme::Eager, Scheme::Lazy, Scheme::Bulk, Scheme::BulkPartial];
    let mut rows = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for r in &results {
        let s: Vec<f64> = schemes.iter().map(|&sc| r.speedup_over_eager(sc)).collect();
        for (i, v) in s.iter().enumerate() {
            cols[i].push(*v);
        }
        let mut row = vec![r.name.clone()];
        row.extend(s.iter().map(|v| fmt_f(*v, 2)));
        rows.push(row);
    }
    let gm: Vec<f64> = cols.iter().map(|c| geomean(c)).collect();
    let mut last = vec!["Geo.Mean".to_string()];
    last.extend(gm.iter().map(|v| fmt_f(*v, 2)));
    rows.push(last);
    print_table(&["App", "Eager", "Lazy", "Bulk", "Bulk-Partial"], &rows);

    println!();
    println!("Shape checks against the paper:");
    println!(
        "  Bulk ~= Lazy:                |1 - Bulk/Lazy| = {:.1}% (paper: ~0%)",
        100.0 * (1.0 - gm[2] / gm[1]).abs()
    );
    println!(
        "  Partial rollback impact:     {:.1}% over Bulk (paper: minor)",
        100.0 * (gm[3] / gm[2] - 1.0)
    );
    let sjbb = results.iter().find(|r| r.name == "sjbb2k").expect("sjbb2k present");
    println!(
        "  sjbb2k Lazy > Eager:         {:.2}x (paper: Lazy faster on SPECjbb2000)",
        sjbb.speedup_over_eager(Scheme::Lazy)
    );
    bulk_bench::write_summary("fig11");
}
