//! Signature accuracy sweep (paper §7.5, Table 8 and Fig. 15).
//!
//! Samples bulk address disambiguations that are *known* to carry no true
//! dependence — a committing thread's write set disjoint from the
//! receiver's read and write sets, drawn from the same per-thread-region /
//! hot / heap address model the TM workloads use — and measures how often
//! signatures report one anyway (false positives), per Table 8
//! configuration, with and without bit permutations.

use bulk_mem::LineAddr;
use bulk_sig::{BitPermutation, Granularity, Signature, SignatureConfig, SignatureSpec};
use bulk_rng::{Rng, SeedableRng, SmallRng};
use bulk_trace::tm_region_line;
use std::collections::HashSet;

/// Accuracy measurements for one signature configuration.
#[derive(Debug, Clone)]
pub struct FpSample {
    /// Table 8 id (`"S14"` etc.).
    pub id: &'static str,
    /// Uncompressed size in bits.
    pub full_bits: u64,
    /// False-positive fraction with no bit permutation (Fig. 15 bars).
    pub fp_identity: f64,
    /// Best false-positive fraction over the tried permutations
    /// (Fig. 15 lower error tick).
    pub fp_best: f64,
    /// Worst false-positive fraction over the tried permutations
    /// (Fig. 15 upper error tick).
    pub fp_worst: f64,
    /// Mean RLE-compressed size of the write signature, in bits
    /// (Table 8 "Compressed Size" column).
    pub avg_compressed_bits: f64,
}

/// Footprints used for sampling: the paper's Table 7 averages.
const WC_LINES: f64 = 22.3;
const RR_LINES: f64 = 67.5;
const WR_LINES: f64 = 22.3;

/// One TM-like access: mostly the actor's private region, some hot-region
/// and shared-heap lines.
fn sample_line(thread: u32, is_write: bool, rng: &mut SmallRng) -> LineAddr {
    let x: f64 = rng.random();
    if is_write {
        if x < 0.03 {
            tm_region_line(0, rng.random_range(0..32)) // contended hot
        } else {
            tm_region_line(1 + thread, rng.random_range(0..512))
        }
    } else if x < 0.15 {
        let hot = if rng.random::<f64>() < 0.5 {
            rng.random_range(0..32)
        } else {
            rng.random_range(0..512)
        };
        tm_region_line(0, hot)
    } else if x < 0.30 {
        tm_region_line(9, rng.random_range(0..8192)) // shared heap
    } else {
        tm_region_line(1 + thread, rng.random_range(0..512))
    }
}

fn sample_set(
    thread: u32,
    is_write: bool,
    n: usize,
    exclude: &HashSet<LineAddr>,
    rng: &mut SmallRng,
) -> Vec<LineAddr> {
    let mut out = Vec::with_capacity(n);
    let mut guard = 0;
    while out.len() < n && guard < n * 100 {
        guard += 1;
        let l = sample_line(thread, is_write, rng);
        if !exclude.contains(&l) {
            out.push(l);
        }
    }
    out
}

fn count(mean: f64, rng: &mut SmallRng) -> usize {
    let spread = mean / 2.0;
    ((mean + (rng.random::<f64>() * 2.0 - 1.0) * spread).max(1.0)) as usize
}

/// One disambiguation trial between two distinct threads: returns
/// (was false positive, compressed bits of the committing write signature).
fn trial(config: &SignatureConfig, rng: &mut SmallRng) -> (bool, u64) {
    let shared = config.clone().into_shared();
    let mut w_c = Signature::with_shared(shared.clone());
    let mut r_r = Signature::with_shared(shared.clone());
    let mut w_r = Signature::with_shared(shared);

    let committer = rng.random_range(0..8u32);
    let receiver = (committer + 1 + rng.random_range(0..7u32)) % 8;

    let wc_lines: HashSet<LineAddr> = sample_set(
        committer,
        true,
        count(WC_LINES, rng),
        &HashSet::new(),
        rng,
    )
    .into_iter()
    .collect();
    for &l in &wc_lines {
        w_c.insert_line(l);
    }
    for l in sample_set(receiver, false, count(RR_LINES, rng), &wc_lines, rng) {
        r_r.insert_line(l);
    }
    for l in sample_set(receiver, true, count(WR_LINES, rng), &wc_lines, rng) {
        w_r.insert_line(l);
    }
    let fp = w_c.intersects(&r_r) || w_c.intersects(&w_r);
    (fp, w_c.compressed_size_bits())
}

fn fp_rate(spec: SignatureSpec, perm: BitPermutation, trials: usize, seed: u64) -> (f64, f64) {
    let config = SignatureConfig::from_spec(spec, perm, Granularity::Line, 64);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut fps = 0usize;
    let mut compressed = 0u64;
    for _ in 0..trials {
        let (fp, bits) = trial(&config, &mut rng);
        fps += usize::from(fp);
        compressed += bits;
    }
    (fps as f64 / trials as f64, compressed as f64 / trials as f64)
}

/// Sweeps one Table 8 configuration: identity permutation plus `n_perms`
/// random permutations (and the paper's TM permutation), over `trials`
/// known-independent disambiguations each.
pub fn sweep_config(spec: SignatureSpec, trials: usize, n_perms: usize, seed: u64) -> FpSample {
    let (fp_identity, avg_compressed_bits) =
        fp_rate(spec, BitPermutation::identity(), trials, seed);
    let mut best = fp_identity;
    let mut worst = fp_identity;
    let mut perm_rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    let mut perms = Vec::new();
    if n_perms > 0 {
        perms.push(BitPermutation::paper_tm());
        for _ in 0..n_perms {
            perms.push(BitPermutation::random(21, 0, &mut perm_rng));
        }
    }
    for perm in perms {
        let (fp, _) = fp_rate(spec, perm, trials, seed);
        best = best.min(fp);
        worst = worst.max(fp);
    }
    FpSample {
        id: spec.id,
        full_bits: spec.full_size_bits(),
        fp_identity,
        fp_best: best,
        fp_worst: worst,
        avg_compressed_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_sig::table8_spec;

    #[test]
    fn bigger_signatures_have_fewer_false_positives() {
        let small = sweep_config(table8_spec("S1").unwrap(), 400, 0, 7);
        let large = sweep_config(table8_spec("S19").unwrap(), 400, 0, 7);
        assert!(
            small.fp_identity > large.fp_identity,
            "S1 {} vs S19 {}",
            small.fp_identity,
            large.fp_identity
        );
    }

    #[test]
    fn error_band_brackets_identity_or_improves_it() {
        let s = sweep_config(table8_spec("S14").unwrap(), 200, 2, 11);
        assert!(s.fp_best <= s.fp_identity);
        assert!(s.fp_worst >= s.fp_best);
    }

    #[test]
    fn compressed_size_well_below_full_for_sparse_sets() {
        let s = sweep_config(table8_spec("S14").unwrap(), 200, 0, 3);
        assert!(s.avg_compressed_bits < s.full_bits as f64 / 2.0);
        assert!(s.avg_compressed_bits > 0.0);
    }

    #[test]
    fn trials_are_truly_independent_sets() {
        // The construction excludes W_C lines from receiver sets, so exact
        // disambiguation never conflicts; any signature hit is a false
        // positive by construction. Spot-check exclusion.
        let mut rng = SmallRng::seed_from_u64(1);
        let wc: HashSet<LineAddr> =
            sample_set(0, true, 50, &HashSet::new(), &mut rng).into_iter().collect();
        let rr = sample_set(1, false, 200, &wc, &mut rng);
        assert!(rr.iter().all(|l| !wc.contains(l)));
    }
}
