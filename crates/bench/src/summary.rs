//! Shared `BENCH_<name>.json` writer for the figure/table binaries.
//!
//! The `[[bench]]` targets time code and embed a metrics block next to
//! their timings; the figure/table binaries print tables instead of
//! timings, so each of them ends by calling [`write_summary`], which runs
//! one small instrumented scenario pair (the canonical TM and TLS runs of
//! the observability tests) and writes a results file carrying only the
//! `"metrics"` block — commits, squash attribution, bulk-invalidation
//! overshoot and the cycle-accounting breakdown (`*.cycles.*`). The
//! regression gate (`bulk-bench-diff`) then sees a `BENCH_*.json` per
//! binary, timed or not.

use std::sync::Arc;

use bulk_obs::Obs;
use bulk_sim::SimConfig;
use bulk_tls::{run_tls_observed, TlsScheme};
use bulk_tm::{run_tm_observed, Scheme};
use bulk_trace::profiles;

use crate::timer::BenchSuite;

/// Runs the canonical instrumented scenario pair (TM `mc` and TLS `gzip`
/// under Bulk, seed 42) and returns the shared observability bundle. Both
/// machines publish into one registry under their `tm.` / `tls.`
/// prefixes, including the cycle-accounting counters.
pub fn scenario_metrics() -> Arc<Obs> {
    let obs = Arc::new(Obs::new());
    let mut tm = profiles::tm_profile("mc").expect("mc profile");
    tm.txs_per_thread = 12;
    run_tm_observed(&tm.generate(42), Scheme::Bulk, &SimConfig::tm_default(), Arc::clone(&obs));
    let mut tls = profiles::tls_profile("gzip").expect("gzip profile");
    tls.tasks = 60;
    run_tls_observed(
        &tls.generate(42),
        TlsScheme::Bulk,
        &SimConfig::tls_default(),
        Arc::clone(&obs),
    );
    obs
}

/// Writes `BENCH_<name>.json` (to `BULK_BENCH_OUT` or the working
/// directory) with an empty timing list and the [`scenario_metrics`]
/// registry embedded as the `"metrics"` block.
pub fn write_summary(name: &'static str) {
    let obs = scenario_metrics();
    let mut suite = BenchSuite::named(name);
    suite.set_metrics("sim", 42, obs.registry());
    suite.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_publishes_cycle_accounting_for_both_machines() {
        let obs = scenario_metrics();
        let reg = obs.registry();
        for prefix in ["tm.", "tls."] {
            let c = |n: &str| reg.counter_value(&format!("{prefix}cycles.{n}"));
            assert!(c("total") > 0, "{prefix}: accounting must cover the run");
            assert_eq!(
                c("useful") + c("squashed") + c("commit") + c("stall") + c("overhead") + c("other"),
                c("total"),
                "{prefix}: categories must conserve"
            );
            assert_eq!(c("audit_violations"), 0, "{prefix}: no accounting violations");
        }
    }

    #[test]
    fn summary_json_embeds_the_metrics_block() {
        let obs = scenario_metrics();
        let mut suite = BenchSuite::named("summary_selftest");
        suite.set_metrics("sim", 42, obs.registry());
        let json = suite.to_json();
        assert!(json.contains("\"tm.cycles.total\""));
        assert!(json.contains("\"tls.cycles.useful\""));
        assert!(!json.contains("\"metrics\": null"));
    }
}
