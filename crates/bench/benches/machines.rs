//! Whole-machine simulation throughput: one small TM and TLS application
//! per scheme. These benches track the simulator itself (how fast the
//! reproduction runs), complementing the experiment binaries that measure
//! the simulated machines.

use bulk_sim::SimConfig;
use bulk_tls::{run_tls, TlsScheme};
use bulk_tm::{run_tm, Scheme};
use bulk_trace::profiles;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_tm(c: &mut Criterion) {
    let cfg = SimConfig::tm_default();
    let mut p = profiles::tm_profile("mc").expect("profile");
    p.txs_per_thread = 10;
    let wl = p.generate(42);
    let mut g = c.benchmark_group("tm_machine");
    g.sample_size(10);
    for s in [Scheme::Eager, Scheme::Lazy, Scheme::Bulk, Scheme::BulkPartial] {
        g.bench_function(BenchmarkId::from_parameter(s), |b| {
            b.iter(|| black_box(run_tm(&wl, s, &cfg)))
        });
    }
    g.finish();
}

fn bench_tls(c: &mut Criterion) {
    let cfg = SimConfig::tls_default();
    let mut p = profiles::tls_profile("gzip").expect("profile");
    p.tasks = 80;
    let wl = p.generate(42);
    let mut g = c.benchmark_group("tls_machine");
    g.sample_size(10);
    for s in TlsScheme::ALL {
        g.bench_function(BenchmarkId::from_parameter(s), |b| {
            b.iter(|| black_box(run_tls(&wl, s, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tm, bench_tls);
criterion_main!(benches);
