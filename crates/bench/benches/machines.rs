//! Whole-machine simulation throughput: one small TM and TLS application
//! per scheme. These benches track the simulator itself (how fast the
//! reproduction runs), complementing the experiment binaries that measure
//! the simulated machines.
//!
//! Results land in `BENCH_machines.json` (see `bulk_bench::timer`).

use bulk_bench::BenchSuite;
use bulk_par::{conflict_light_tm, run_par_tm, CrashPoint, KillSpec, ParConfig};
use bulk_sim::SimConfig;
use bulk_tls::{run_tls, TlsScheme};
use bulk_tm::{run_tm, Scheme};
use bulk_trace::profiles;
use std::hint::black_box;

fn bench_tm(suite: &mut BenchSuite) {
    let cfg = SimConfig::tm_default();
    let mut p = profiles::tm_profile("mc").expect("profile");
    p.txs_per_thread = 10;
    let wl = p.generate(42);
    for s in [Scheme::Eager, Scheme::Lazy, Scheme::Bulk, Scheme::BulkPartial] {
        suite.bench("tm_machine", s, || black_box(run_tm(&wl, s, &cfg)));
    }
}

fn bench_tls(suite: &mut BenchSuite) {
    let cfg = SimConfig::tls_default();
    let mut p = profiles::tls_profile("gzip").expect("profile");
    p.tasks = 80;
    let wl = p.generate(42);
    for s in TlsScheme::ALL {
        suite.bench("tls_machine", s, || black_box(run_tls(&wl, s, &cfg)));
    }
}

/// Parallel-runtime commit throughput vs. thread count (strong scaling:
/// the transaction total is fixed, threads split it). Each transaction
/// dwells ~100 µs (100k cycles at 1000 ns/kcycle), so the run is
/// latency-bound and the dwells overlap across OS threads the way memory
/// latency overlaps across real processors — total time shrinks with
/// thread count even on a single-core host, and what the bench measures
/// is the protocol's concurrency, not the host's core count. The
/// workload is conflict-light (private address regions), so squashes
/// would be pure signature aliasing.
fn bench_par(suite: &mut BenchSuite) {
    for threads in [1usize, 2, 4, 8, 16] {
        let wl = conflict_light_tm(threads, 64, 4, 100_000);
        let cfg = ParConfig { compute_ns_per_kcycle: 1_000, seed: 42, ..ParConfig::default() };
        suite.bench("par_tm_throughput", format!("t{threads}"), || {
            black_box(run_par_tm(&wl, Scheme::Bulk, &cfg).expect("bulk is par-supported"))
        });
    }
}

/// Crash-recovery soak: end-to-end run time with one worker killed at
/// each commit-protocol point, against the crash-free run of the same
/// workload. The gap between a tagged run and `clean` is the full
/// recovery detour — supervisor fencing, checkpoint verification,
/// respawn, and the respawned worker's log replay — so regressions in
/// any recovery stage show up here even though each stage is
/// individually fast.
fn bench_par_crash_recovery(suite: &mut BenchSuite) {
    let wl = conflict_light_tm(4, 32, 4, 0);
    let base = ParConfig { seed: 42, ..ParConfig::default() };
    suite.bench("par_crash_recovery", "clean", || {
        black_box(run_par_tm(&wl, Scheme::Bulk, &base).expect("crash-free run"))
    });
    for (tag, point) in [
        ("claim", CrashPoint::Claim),
        ("publish", CrashPoint::Publish),
        ("apply", CrashPoint::Apply),
    ] {
        let cfg = ParConfig {
            seed: 42,
            kills: vec![KillSpec { proc: 1, point, at: 2 }],
            ..ParConfig::default()
        };
        suite.bench("par_crash_recovery", tag, || {
            black_box(run_par_tm(&wl, Scheme::Bulk, &cfg).expect("recovery must succeed"))
        });
    }
}

/// Runs the shared instrumented scenario pair once, untimed, so
/// `BENCH_machines.json` carries squash attribution, invalidation
/// overshoot and the cycle-accounting breakdown next to the timings.
fn collect_metrics(suite: &mut BenchSuite) {
    let obs = bulk_bench::scenario_metrics();
    suite.set_metrics("sim", 42, obs.registry());
}

fn main() {
    let mut suite = BenchSuite::from_args("machines");
    bench_tm(&mut suite);
    bench_tls(&mut suite);
    bench_par(&mut suite);
    bench_par_crash_recovery(&mut suite);
    collect_metrics(&mut suite);
    suite.finish();
}
