//! Whole-machine simulation throughput: one small TM and TLS application
//! per scheme. These benches track the simulator itself (how fast the
//! reproduction runs), complementing the experiment binaries that measure
//! the simulated machines.
//!
//! Results land in `BENCH_machines.json` (see `bulk_bench::timer`).

use bulk_bench::BenchSuite;
use bulk_sim::SimConfig;
use bulk_tls::{run_tls, TlsScheme};
use bulk_tm::{run_tm, Scheme};
use bulk_trace::profiles;
use std::hint::black_box;

fn bench_tm(suite: &mut BenchSuite) {
    let cfg = SimConfig::tm_default();
    let mut p = profiles::tm_profile("mc").expect("profile");
    p.txs_per_thread = 10;
    let wl = p.generate(42);
    for s in [Scheme::Eager, Scheme::Lazy, Scheme::Bulk, Scheme::BulkPartial] {
        suite.bench("tm_machine", s, || black_box(run_tm(&wl, s, &cfg)));
    }
}

fn bench_tls(suite: &mut BenchSuite) {
    let cfg = SimConfig::tls_default();
    let mut p = profiles::tls_profile("gzip").expect("profile");
    p.tasks = 80;
    let wl = p.generate(42);
    for s in TlsScheme::ALL {
        suite.bench("tls_machine", s, || black_box(run_tls(&wl, s, &cfg)));
    }
}

/// Runs the shared instrumented scenario pair once, untimed, so
/// `BENCH_machines.json` carries squash attribution, invalidation
/// overshoot and the cycle-accounting breakdown next to the timings.
fn collect_metrics(suite: &mut BenchSuite) {
    let obs = bulk_bench::scenario_metrics();
    suite.set_metrics(obs.registry());
}

fn main() {
    let mut suite = BenchSuite::from_args("machines");
    bench_tm(&mut suite);
    bench_tls(&mut suite);
    collect_metrics(&mut suite);
    suite.finish();
}
