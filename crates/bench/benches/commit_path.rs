//! The commit and squash paths: Bulk's clear-a-register commit and
//! signature-expansion bulk invalidation, versus a conventional scheme's
//! address enumeration and tag walk.
//!
//! Results land in `BENCH_commit_path.json` (see `bulk_bench::timer`).

use bulk_bench::BenchSuite;
use bulk_core::{flows, Bdm};
use bulk_mem::{Addr, Cache, CacheGeometry};
use bulk_sig::{Signature, SignatureConfig};
use std::hint::black_box;

fn write_set(n: u32) -> Vec<Addr> {
    (0..n)
        .map(|i| Addr::new((i.wrapping_mul(2654435761)) & 0x00ff_ffc0))
        .collect()
}

fn bench_commit_message(suite: &mut BenchSuite) {
    for n in [22u32, 100] {
        let ws = write_set(n);
        // Bulk: compress the write signature.
        let mut sig = Signature::new(SignatureConfig::s14_tm());
        for a in &ws {
            sig.insert_addr(*a);
        }
        suite.bench("commit_message", format!("bulk_compress_sig/{n}"), || {
            black_box(sig.compress())
        });
        // Conventional: serialize the address list.
        suite.bench("commit_message", format!("lazy_enumerate_addrs/{n}"), || {
            let mut buf = Vec::with_capacity(ws.len() * 4);
            for a in &ws {
                buf.extend_from_slice(&a.raw().to_le_bytes());
            }
            black_box(buf)
        });
    }
}

fn bench_squash_invalidation(suite: &mut BenchSuite) {
    let geom = CacheGeometry::tm_l1();
    for n in [8u32, 64] {
        suite.bench_batched(
            "squash_invalidation",
            format!("bulk_expansion/{n}"),
            || {
                let mut bdm = Bdm::new(SignatureConfig::s14_tm(), geom, 1);
                let v = bdm.alloc_version().expect("slot");
                let mut cache = Cache::new(geom);
                for a in write_set(n) {
                    bdm.record_store(v, a);
                    cache.fill_dirty(a.line(64));
                }
                (bdm, v, cache)
            },
            |(mut bdm, v, mut cache)| black_box(flows::squash(&mut bdm, v, &mut cache, false)),
        );
        suite.bench_batched(
            "squash_invalidation",
            format!("conventional_tag_walk/{n}"),
            || {
                let mut cache = Cache::new(geom);
                let ws: Vec<_> = write_set(n).iter().map(|a| a.line(64)).collect();
                for &l in &ws {
                    cache.fill_dirty(l);
                }
                (cache, ws)
            },
            |(mut cache, ws)| {
                // Walk every cache set and tag, as a scheme with
                // per-line speculative bits must.
                let mut dropped = 0;
                for set in 0..geom.num_sets() {
                    let lines: Vec<_> =
                        cache.lines_in_set(set).iter().map(|l| l.addr()).collect();
                    for l in lines {
                        if ws.contains(&l) {
                            cache.invalidate(l);
                            dropped += 1;
                        }
                    }
                }
                black_box(dropped)
            },
        );
    }
}

fn bench_expansion(suite: &mut BenchSuite) {
    let geom = CacheGeometry::tm_l1();
    let mut cache = Cache::new(geom);
    for i in 0..400u32 {
        cache.fill_clean(Addr::new(i * 64).line(64));
    }
    let mut sig = Signature::new(SignatureConfig::s14_tm());
    for a in write_set(22) {
        sig.insert_addr(a);
    }
    suite.bench("expansion", "signature_expansion_400lines", || {
        black_box(sig.expand(&cache))
    });

    // Untimed instrumented expansion of the same scenario: the δ
    // pre-selection and tag-read counters land in the metrics block.
    let reg = bulk_obs::Registry::new();
    let obs = bulk_obs::ExpansionObs::register(&reg, "commit_path.");
    let matched = sig.expand_observed(&cache, Some(&obs));
    reg.counter("commit_path.expansion.exact_lines").add(
        matched
            .iter()
            .filter(|e| write_set(22).iter().any(|a| a.line(64) == e.addr))
            .count() as u64,
    );
    suite.set_metrics("sim", 0, &reg);
}

fn main() {
    let mut suite = BenchSuite::from_args("commit_path");
    bench_commit_message(&mut suite);
    bench_squash_invalidation(&mut suite);
    bench_expansion(&mut suite);
    suite.finish();
}
