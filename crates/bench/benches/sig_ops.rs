//! Microbenchmarks of the primitive bulk operations (paper Table 1):
//! insert, membership, intersection, union, δ decode and RLE compression,
//! across representative Table 8 configurations.

use bulk_mem::{Addr, CacheGeometry};
use bulk_sig::{table8_spec, BitPermutation, Granularity, Signature, SignatureConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn config(id: &str) -> SignatureConfig {
    SignatureConfig::from_spec(
        table8_spec(id).expect("catalog id"),
        BitPermutation::paper_tm(),
        Granularity::Line,
        64,
    )
}

fn filled(cfg: &SignatureConfig, n: u32) -> Signature {
    let mut s = Signature::new(cfg.clone());
    for i in 0..n {
        s.insert_addr(Addr::new(i.wrapping_mul(2654435761) & 0x00ff_ffc0));
    }
    s
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert");
    for id in ["S1", "S14", "S23"] {
        let cfg = config(id);
        g.bench_with_input(BenchmarkId::from_parameter(id), &cfg, |b, cfg| {
            let mut s = Signature::new(cfg.clone());
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(0x40);
                s.insert_addr(black_box(Addr::new(i)));
            });
        });
    }
    g.finish();
}

fn bench_membership(c: &mut Criterion) {
    let mut g = c.benchmark_group("membership");
    for id in ["S1", "S14", "S23"] {
        let cfg = config(id);
        let s = filled(&cfg, 22);
        g.bench_with_input(BenchmarkId::from_parameter(id), &s, |b, s| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(0x40);
                black_box(s.contains_addr(black_box(Addr::new(i))))
            });
        });
    }
    g.finish();
}

fn bench_intersect_and_union(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_ops");
    for id in ["S1", "S14", "S23"] {
        let cfg = config(id);
        let a = filled(&cfg, 22);
        let bsig = filled(&cfg, 68);
        g.bench_function(BenchmarkId::new("intersects", id), |bench| {
            bench.iter(|| black_box(a.intersects(black_box(&bsig))))
        });
        g.bench_function(BenchmarkId::new("union", id), |bench| {
            bench.iter(|| black_box(a.union(black_box(&bsig))))
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let geom = CacheGeometry::tm_l1();
    let mut g = c.benchmark_group("decode");
    for n in [4u32, 22, 68] {
        let cfg = config("S14");
        let s = filled(&cfg, n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &s, |b, s| {
            b.iter(|| black_box(s.decode_sets(&geom)))
        });
    }
    g.finish();
}

fn bench_rle(c: &mut Criterion) {
    let mut g = c.benchmark_group("rle");
    let cfg = config("S14");
    for n in [4u32, 22, 200] {
        let s = filled(&cfg, n);
        g.bench_function(BenchmarkId::new("compress", n), |b| {
            b.iter(|| black_box(s.compress()))
        });
        let code = s.compress();
        let shared = s.config().clone();
        g.bench_function(BenchmarkId::new("decompress", n), |b| {
            b.iter(|| black_box(Signature::decompress(shared.clone(), &code).expect("valid")))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_membership,
    bench_intersect_and_union,
    bench_decode,
    bench_rle
);
criterion_main!(benches);
