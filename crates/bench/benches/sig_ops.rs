//! Microbenchmarks of the primitive bulk operations (paper Table 1):
//! insert, membership, intersection, union, δ decode and RLE compression,
//! across representative Table 8 configurations.
//!
//! Results land in `BENCH_sig_ops.json` (see `bulk_bench::timer`).

use bulk_bench::BenchSuite;
use bulk_mem::{Addr, CacheGeometry};
use bulk_sig::{table8_spec, BitPermutation, Granularity, Signature, SignatureConfig};
use std::hint::black_box;
use std::sync::Arc;

/// Configurations are shared between signatures via `Arc`, exactly as the
/// machines share them — the binary operations take the `Arc::ptr_eq`
/// compatibility fast path instead of deep-comparing layouts per call.
fn config(id: &str) -> Arc<SignatureConfig> {
    SignatureConfig::from_spec(
        table8_spec(id).expect("catalog id"),
        BitPermutation::paper_tm(),
        Granularity::Line,
        64,
    )
    .into_shared()
}

fn filled(cfg: &Arc<SignatureConfig>, n: u32) -> Signature {
    let mut s = Signature::with_shared(cfg.clone());
    for i in 0..n {
        s.insert_addr(Addr::new(i.wrapping_mul(2654435761) & 0x00ff_ffc0));
    }
    s
}

fn bench_insert(suite: &mut BenchSuite) {
    for id in ["S1", "S14", "S23"] {
        let cfg = config(id);
        let mut s = Signature::with_shared(cfg.clone());
        let mut i = 0u32;
        suite.bench("insert", id, || {
            i = i.wrapping_add(0x40);
            s.insert_addr(black_box(Addr::new(i)));
        });
    }
}

fn bench_membership(suite: &mut BenchSuite) {
    for id in ["S1", "S14", "S23"] {
        let s = filled(&config(id), 22);
        let mut i = 0u32;
        suite.bench("membership", id, || {
            i = i.wrapping_add(0x40);
            black_box(s.contains_addr(black_box(Addr::new(i))))
        });
    }
}

fn bench_intersect_and_union(suite: &mut BenchSuite) {
    for id in ["S1", "S14", "S23"] {
        let cfg = config(id);
        let a = filled(&cfg, 22);
        let bsig = filled(&cfg, 68);
        suite.bench("set_ops", format!("intersects/{id}"), || {
            black_box(a.intersects(black_box(&bsig)))
        });
        suite.bench("set_ops", format!("union/{id}"), || {
            black_box(a.union(black_box(&bsig)))
        });
    }
}

fn bench_decode(suite: &mut BenchSuite) {
    let geom = CacheGeometry::tm_l1();
    for n in [4u32, 22, 68] {
        let s = filled(&config("S14"), n);
        suite.bench("decode", n, || black_box(s.decode_sets(&geom)));
    }
}

fn bench_rle(suite: &mut BenchSuite) {
    let cfg = config("S14");
    for n in [4u32, 22, 200] {
        let s = filled(&cfg, n);
        suite.bench("rle", format!("compress/{n}"), || black_box(s.compress()));
        let code = s.compress();
        let shared = s.config().clone();
        suite.bench("rle", format!("decompress/{n}"), || {
            black_box(Signature::decompress(shared.clone(), &code).expect("valid"))
        });
    }
}

/// Untimed membership false-positive probe per configuration: fill with a
/// Table-8-sized address set, then test addresses known to be absent. The
/// counters land in the `BENCH_sig_ops.json` metrics block and track the
/// aliasing rate the attribution layer measures at machine level.
fn collect_metrics(suite: &mut BenchSuite) {
    let reg = bulk_obs::Registry::new();
    let inserted: std::collections::HashSet<u32> =
        (0..22u32).map(|i| i.wrapping_mul(2654435761) & 0x00ff_ffc0).collect();
    for id in ["S1", "S14", "S23"] {
        let s = filled(&config(id), 22);
        let probes = reg.counter(&format!("sig_ops.fp_probe.{id}.probes"));
        let fps = reg.counter(&format!("sig_ops.fp_probe.{id}.false_positives"));
        for i in 0..1000u32 {
            // A different multiplicative pattern than `filled`'s, with the
            // (unlikely) true members skipped, so every hit is aliasing.
            let raw = i.wrapping_mul(0x9e37_79b9) & 0x00ff_ffc0;
            if inserted.contains(&raw) {
                continue;
            }
            probes.inc();
            if s.contains_addr(Addr::new(raw)) {
                fps.inc();
            }
        }
    }
    suite.set_metrics("sim", 0, &reg);
}

fn main() {
    let mut suite = BenchSuite::from_args("sig_ops");
    bench_insert(&mut suite);
    bench_membership(&mut suite);
    bench_intersect_and_union(&mut suite);
    bench_decode(&mut suite);
    bench_rle(&mut suite);
    collect_metrics(&mut suite);
    suite.finish();
}
