//! Bulk disambiguation (one signature intersection) versus conventional
//! exact per-address disambiguation (probing every committed address
//! against the receiver's sets) — the paper's "single-operation full
//! address disambiguation" simplification, quantified.
//!
//! Results land in `BENCH_disambiguation.json` (see `bulk_bench::timer`).

use bulk_bench::BenchSuite;
use bulk_mem::{Addr, LineAddr};
use bulk_obs::VerdictCounters;
use bulk_sig::{Signature, SignatureConfig};
use std::collections::HashSet;
use std::hint::black_box;

fn addresses(n: u32, salt: u32) -> Vec<Addr> {
    (0..n)
        .map(|i| Addr::new((i.wrapping_mul(2654435761) ^ salt) & 0x00ff_ffc0))
        .collect()
}

fn main() {
    let mut suite = BenchSuite::from_args("disambiguation");
    let reg = bulk_obs::Registry::new();
    for (wc_n, r_n) in [(22u32, 90u32), (100, 400)] {
        let label = format!("{wc_n}w_{r_n}r");
        let wc = addresses(wc_n, 0x1111);
        let rset = addresses(r_n, 0x2222);

        // Bulk: two pre-built signatures, one intersection test.
        let shared = SignatureConfig::s14_tm().into_shared();
        let mut w_sig = Signature::with_shared(shared.clone());
        for a in &wc {
            w_sig.insert_addr(*a);
        }
        let mut r_sig = Signature::with_shared(shared);
        for a in &rset {
            r_sig.insert_addr(*a);
        }
        suite.bench("bulk", &label, || black_box(w_sig.intersects(black_box(&r_sig))));

        // Conventional: hash-set membership per committed address.
        let exact: HashSet<LineAddr> = rset.iter().map(|a| a.line(64)).collect();
        suite.bench("exact_per_address", &label, || {
            black_box(wc.iter().any(|a| exact.contains(&black_box(*a).line(64))))
        });

        // Untimed: classify the signature's per-address answers against the
        // exact oracle, so the metrics block reports the aliasing this
        // scenario's signatures introduce.
        let verdicts = VerdictCounters::register(&reg, &format!("disambiguation.{label}."));
        for a in &wc {
            verdicts.record(r_sig.contains_addr(*a), exact.contains(&a.line(64)));
        }
    }
    suite.set_metrics("sim", 0, &reg);
    suite.finish();
}
