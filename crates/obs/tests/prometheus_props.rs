//! Property tests for the Prometheus text-exposition encoder
//! (`bulk_obs::prometheus`): escaping round-trips, grammar-valid
//! sanitized names, monotone cumulative buckets, and byte-identical
//! encodes for identical registry state.

use bulk_obs::metrics::{Histogram, Registry};
use bulk_obs::prometheus::{
    encode, escape_label_value, parse_exposition, sanitize_label_name, sanitize_metric_name,
    unescape_label_value, validate, Scope,
};
use bulk_rng::check::{run, Gen};
use bulk_rng::{prop_assert, prop_assert_eq};

/// An arbitrary string over a alphabet rich in escaping hazards.
fn hazard_string(g: &mut Gen) -> String {
    let alphabet: Vec<char> =
        "ab9_:.-{}\"\\\n \t=,#µ".chars().collect();
    g.vec_of(0..24, |g| alphabet[g.in_range(0..alphabet.len())])
        .into_iter()
        .collect()
}

#[test]
fn prop_label_escape_round_trips() {
    run("prometheus_label_escape_round_trips", 256, |g| {
        let raw = hazard_string(g);
        let escaped = escape_label_value(&raw);
        // The escaped form never contains a bare quote or newline, so it
        // can sit inside `label="…"` on one exposition line.
        prop_assert!(!escaped.contains('\n'), "escaped value has raw newline: {escaped:?}");
        let mut prev_backslash = false;
        for c in escaped.chars() {
            prop_assert!(!(c == '"' && !prev_backslash), "unescaped quote in {escaped:?}");
            prev_backslash = c == '\\' && !prev_backslash;
        }
        let back = unescape_label_value(&escaped)
            .map_err(|e| format!("escape({raw:?}) did not unescape: {e}"))?;
        prop_assert_eq!(back, raw);
        Ok(())
    });
}

#[test]
fn prop_sanitized_names_match_the_grammar() {
    run("prometheus_sanitized_names_match_grammar", 256, |g| {
        let raw = hazard_string(g);
        let name = sanitize_metric_name(&raw);
        prop_assert!(!name.is_empty());
        for (i, c) in name.chars().enumerate() {
            let ok = c.is_ascii_alphabetic()
                || c == '_'
                || c == ':'
                || (i > 0 && c.is_ascii_digit());
            prop_assert!(ok, "sanitize_metric_name({raw:?}) -> {name:?}: bad char {c:?}");
        }
        let label = sanitize_label_name(&raw);
        for (i, c) in label.chars().enumerate() {
            let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
            prop_assert!(ok, "sanitize_label_name({raw:?}) -> {label:?}: bad char {c:?}");
        }
        Ok(())
    });
}

/// Fills a registry with a random but deterministic-by-seed shape.
fn arbitrary_registry(g: &mut Gen) -> Registry {
    let reg = Registry::new();
    for i in 0..g.in_range(0usize..4) {
        reg.counter(&format!("c{i}.{}", g.in_range(0u64..3))).add(g.in_range(0u64..1000));
    }
    for i in 0..g.in_range(0usize..3) {
        reg.gauge(&format!("g{i}")).set(g.in_range(0u64..1000));
    }
    for i in 0..g.in_range(0usize..3) {
        let h = reg.histogram(&format!("h{i}"), &Histogram::pow2_edges(g.in_range(1u32..8)));
        for _ in 0..g.in_range(0usize..40) {
            h.observe(g.in_range(0u64..1 << 9));
        }
    }
    reg
}

#[test]
fn prop_histogram_buckets_encode_cumulative_monotone() {
    run("prometheus_buckets_cumulative_monotone", 128, |g| {
        let reg = arbitrary_registry(g);
        let job = hazard_string(g);
        let text = encode(&[Scope::labelled(&[("job", &job), ("machine", "tm")], &reg)]);
        // The strict validator checks the grammar, bucket monotonicity
        // and +Inf == _count for every histogram series.
        validate(&text).map_err(|e| format!("invalid exposition: {e}\n{text}"))?;
        // And the parsed label value round-trips the raw job name.
        let exp = parse_exposition(&text).map_err(|e| e.to_string())?;
        for s in &exp.samples {
            if let Some((_, v)) = s.labels.iter().find(|(k, _)| k == "job") {
                prop_assert_eq!(v.as_str(), job.as_str());
            }
        }
        Ok(())
    });
}

#[test]
fn prop_identical_registry_state_encodes_byte_identically() {
    run("prometheus_identical_state_identical_bytes", 64, |g| {
        let seed = g.u64();
        let mk = || {
            let mut g2 = Gen::from_seed(seed);
            let reg = arbitrary_registry(&mut g2);
            let job = hazard_string(&mut g2);
            encode(&[
                Scope::unlabelled(&reg),
                Scope::labelled(&[("job", &job)], &reg),
            ])
        };
        prop_assert_eq!(mk(), mk());
        Ok(())
    });
}
