//! The metrics registry: monotonic counters, gauges and fixed-bucket
//! histograms with zero-allocation hot-path recording and deterministic
//! JSON serialization.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are registered once by
//! name in a [`Registry`] and then recorded through shared atomics: the
//! hot path is one atomic read-modify-write, with no locking, no
//! allocation and no formatting. Serialization ([`Registry::to_json`])
//! walks the registry in name order, so two runs that record the same
//! values produce byte-identical JSON — the property the determinism
//! tests and the `BENCH_*.json` trajectory rely on.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter. Cloning shares the underlying value.
///
/// Increments saturate at `u64::MAX` instead of wrapping: a counter that
/// has hit the ceiling stays pinned there, so a report can never show a
/// small value that silently wrapped.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a standalone counter (not attached to any registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (e.g. resident overflow
/// lines). Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a standalone gauge (not attached to any registry).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (a high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    edges: Vec<u64>,
    /// `edges.len() + 1` buckets; the last one counts values above the
    /// largest edge.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram. Bucket `i` counts observations `v` with
/// `edges[i-1] < v <= edges[i]` (the first bucket counts `v <= edges[0]`);
/// one extra bucket counts everything above the last edge.
///
/// Cloning shares the underlying buckets. Recording is a binary search
/// over the edge array plus three relaxed atomic adds — no allocation.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Creates a standalone histogram with the given inclusive upper
    /// bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn with_edges(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one bucket edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let buckets = (0..edges.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistInner {
            edges: edges.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Power-of-two edges `[1, 2, 4, …, 2^max_exp]` — the workspace's
    /// default shape for byte and line counts.
    pub fn pow2_edges(max_exp: u32) -> Vec<u64> {
        (0..=max_exp).map(|e| 1u64 << e).collect()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.0.edges.partition_point(|&e| e < v);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .0
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The inclusive upper bounds of the finite buckets.
    pub fn edges(&self) -> &[u64] {
        &self.0.edges
    }

    /// Counts per finite bucket, in edge order.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.buckets[..self.0.edges.len()]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Count of observations above the last edge.
    pub fn overflow_count(&self) -> u64 {
        self.0.buckets[self.0.edges.len()].load(Ordering::Relaxed)
    }

    /// Upper-edge quantile estimate: the inclusive upper edge of the
    /// first bucket whose cumulative count reaches `ceil(q * count)`.
    ///
    /// With pow2 edges this over-reports by at most 2x — the right bias
    /// for a latency percentile (never under-promises). Returns `None`
    /// when nothing has been observed, and `f64::INFINITY` when the rank
    /// falls in the overflow bucket (rendered `+Inf` by the Prometheus
    /// encoder). `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return Some(match self.0.edges.get(i) {
                    Some(&edge) => edge as f64,
                    None => f64::INFINITY,
                });
            }
        }
        Some(f64::INFINITY)
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .0
            .edges
            .iter()
            .zip(self.bucket_counts())
            .map(|(e, n)| format!("{{\"le\": {e}, \"n\": {n}}}"))
            .collect();
        format!(
            "{{\"count\": {}, \"sum\": {}, \"buckets\": [{}], \"gt\": {}}}",
            self.count(),
            self.sum(),
            buckets.join(", "),
            self.overflow_count()
        )
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a lock and may
/// allocate; it is meant to happen once, up front. The returned handles
/// record lock-free. Registering the same name twice returns a handle to
/// the same underlying metric.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, registering it if new.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge named `name`, registering it if new.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram named `name`, registering it with the given
    /// edges if new. The edges of an already-registered histogram win; a
    /// mismatch is a caller bug and panics.
    pub fn histogram(&self, name: &str, edges: &[u64]) -> Histogram {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let h = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_edges(edges))
            .clone();
        assert_eq!(
            h.edges(),
            edges,
            "histogram `{name}` re-registered with different edges"
        );
        h
    }

    /// Current value of the counter named `name` (0 if unregistered).
    pub fn counter_value(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.counters.get(name).map_or(0, Counter::value)
    }

    /// Snapshot of every counter as `(name, value)`, in name order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.value()))
            .collect()
    }

    /// Snapshot of every gauge as `(name, value)`, in name order.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.value()))
            .collect()
    }

    /// Snapshot of every histogram as `(name, handle)`, in name order.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.clone()))
            .collect()
    }

    /// Serializes the whole registry as a deterministic JSON object:
    /// metrics appear sorted by name, values are integers, and the layout
    /// is fixed — identical runs produce byte-identical output.
    pub fn to_json(&self) -> String {
        self.to_json_indented("")
    }

    /// [`Registry::to_json`] with every line prefixed by `base` — for
    /// embedding the object inside an outer JSON document (the
    /// `BENCH_*.json` metrics block).
    pub fn to_json_indented(&self, base: &str) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut out = String::new();
        out.push_str("{\n");
        push_map(
            &mut out,
            base,
            "counters",
            inner.counters.iter().map(|(n, c)| (n.as_str(), c.value().to_string())),
            true,
        );
        push_map(
            &mut out,
            base,
            "gauges",
            inner.gauges.iter().map(|(n, g)| (n.as_str(), g.value().to_string())),
            true,
        );
        push_map(
            &mut out,
            base,
            "histograms",
            inner.histograms.iter().map(|(n, h)| (n.as_str(), h.to_json())),
            false,
        );
        out.push_str(base);
        out.push('}');
        out
    }
}

fn push_map<'a>(
    out: &mut String,
    base: &str,
    key: &str,
    entries: impl Iterator<Item = (&'a str, String)>,
    trailing_comma: bool,
) {
    out.push_str(&format!("{base}  \"{key}\": {{\n"));
    let entries: Vec<_> = entries.collect();
    for (i, (name, value)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("{base}    \"{}\": {value}{sep}\n", crate::json_escape(name)));
    }
    out.push_str(&format!(
        "{base}  }}{}\n",
        if trailing_comma { "," } else { "" }
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_at_max() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.value(), u64::MAX, "counter must saturate, not wrap");
        c.inc();
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn counter_handles_share_state() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter_value("x"), 3);
    }

    #[test]
    fn gauge_set_and_max() {
        let g = Gauge::new();
        g.set(7);
        g.record_max(3);
        assert_eq!(g.value(), 7);
        g.record_max(10);
        assert_eq!(g.value(), 10);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::with_edges(&[1, 4, 16]);
        // Exactly on an edge lands in that edge's bucket.
        h.observe(0);
        h.observe(1); // -> le=1
        h.observe(2);
        h.observe(4); // -> le=4
        h.observe(5);
        h.observe(16); // -> le=16
        h.observe(17); // -> gt
        assert_eq!(h.bucket_counts(), vec![2, 2, 2]);
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 45);
    }

    #[test]
    fn histogram_single_edge() {
        let h = Histogram::with_edges(&[10]);
        h.observe(10);
        h.observe(11);
        assert_eq!(h.bucket_counts(), vec![1]);
        assert_eq!(h.overflow_count(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_edges() {
        Histogram::with_edges(&[4, 4]);
    }

    #[test]
    fn pow2_edges_shape() {
        assert_eq!(Histogram::pow2_edges(3), vec![1, 2, 4, 8]);
    }

    #[test]
    fn pow2_edge_boundaries_land_in_their_edge_bucket() {
        // Edges [1, 2, 4, 8]: every exact power of two must land in its
        // own bucket (inclusive upper bound), one above it in the next.
        let h = Histogram::with_edges(&Histogram::pow2_edges(3));
        for v in [1u64, 2, 4, 8] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![1, 1, 1, 1]);
        assert_eq!(h.overflow_count(), 0);
        for v in [3u64, 5, 9] {
            h.observe(v);
        }
        // 3 -> le=4, 5 -> le=8, 9 -> gt.
        assert_eq!(h.bucket_counts(), vec![1, 1, 2, 2]);
        assert_eq!(h.overflow_count(), 1);
    }

    #[test]
    fn pow2_zero_lands_in_first_bucket() {
        let h = Histogram::with_edges(&Histogram::pow2_edges(10));
        h.observe(0);
        assert_eq!(h.bucket_counts()[0], 1, "0 <= first edge (1)");
        assert_eq!(h.overflow_count(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn pow2_u64_max_lands_in_overflow_bucket() {
        let h = Histogram::with_edges(&Histogram::pow2_edges(63));
        assert_eq!(*h.edges().last().unwrap(), 1u64 << 63);
        h.observe(1u64 << 63); // exactly the last edge: finite bucket
        h.observe(u64::MAX); // past it: overflow bucket
        assert_eq!(*h.bucket_counts().last().unwrap(), 1);
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn quantile_walks_cumulative_buckets_to_the_upper_edge() {
        let h = Histogram::with_edges(&[1, 4, 16]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for v in [1u64, 1, 2, 3, 5, 6, 7, 8, 9, 10] {
            h.observe(v);
        }
        // Buckets: le=1 -> 2, le=4 -> 2, le=16 -> 6; count = 10.
        assert_eq!(h.quantile(0.0), Some(1.0), "q=0 is the first non-empty bucket");
        assert_eq!(h.quantile(0.2), Some(1.0));
        assert_eq!(h.quantile(0.4), Some(4.0));
        assert_eq!(h.quantile(0.5), Some(16.0));
        assert_eq!(h.quantile(1.0), Some(16.0));
    }

    #[test]
    fn quantile_overflow_bucket_is_infinite() {
        let h = Histogram::with_edges(&[1]);
        h.observe(100);
        assert_eq!(h.quantile(0.5), Some(f64::INFINITY));
        h.observe(1);
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(0.99), Some(f64::INFINITY));
    }

    #[test]
    fn quantile_clamps_q() {
        let h = Histogram::with_edges(&[2, 8]);
        h.observe(1);
        h.observe(5);
        assert_eq!(h.quantile(-3.0), Some(2.0));
        assert_eq!(h.quantile(7.0), Some(8.0));
    }

    #[test]
    fn histogram_sum_saturates() {
        let h = Histogram::with_edges(&[1]);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn json_is_sorted_and_deterministic() {
        let mk = || {
            let reg = Registry::new();
            reg.counter("z.last").add(2);
            reg.counter("a.first").inc();
            reg.gauge("mid").set(9);
            let h = reg.histogram("h", &[1, 2]);
            h.observe(2);
            reg.to_json()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "same recording must serialize byte-identically");
        let first = a.find("a.first").unwrap();
        let last = a.find("z.last").unwrap();
        assert!(first < last, "counters must appear in name order");
        assert!(a.contains("\"h\": {\"count\": 1, \"sum\": 2"));
    }

    #[test]
    fn json_indented_prefixes_every_line() {
        let reg = Registry::new();
        reg.counter("c").inc();
        let s = reg.to_json_indented("    ");
        for line in s.lines().skip(1) {
            assert!(line.starts_with("    "), "unprefixed line: {line:?}");
        }
    }
}
