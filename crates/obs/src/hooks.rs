//! Pre-registered handle bundles for the instrumented layers.
//!
//! The hot paths (signature expansion, overflow walks, the machines'
//! commit/squash/invalidate steps) must not pay name lookups or
//! allocation per record. Each bundle here is built once — resolving all
//! of its [`Counter`]/[`Gauge`]/[`Histogram`] handles by name — and then
//! recorded through with plain atomic ops.
//!
//! Naming convention: every handle lives under the prefix the caller
//! passes at registration (`"tm."`, `"tls."`, `"bench."`, …), so one
//! [`Registry`] can host several machines side by side.

use std::sync::Arc;

use crate::attribution::VerdictCounters;
use crate::events::{EventKind, SquashCause};
use crate::metrics::{Counter, Gauge, Histogram, Registry};
use crate::trace::{
    cycle_accounting, AccountingViolation, CycleBreakdown, SpanId, SpanKind, SpanOutcome, TraceLog,
};
use crate::Obs;

/// Counters for the signature expansion path (paper §4.1's δ decode):
/// how often signatures are expanded into line addresses, how much cache
/// tag work that costs, and how many lines each expansion selects.
#[derive(Debug, Clone)]
pub struct ExpansionObs {
    /// Signature expansions performed.
    pub calls: Counter,
    /// Candidate cache sets selected by the decoded set-index bits.
    pub candidate_sets: Counter,
    /// Cache tag reads performed while filtering candidate lines.
    pub tag_reads: Counter,
    /// Lines the expansions actually selected (signature members present
    /// in the cache).
    pub matched_lines: Counter,
}

impl ExpansionObs {
    /// Registers the expansion counters under `prefix`.
    pub fn register(reg: &Registry, prefix: &str) -> Self {
        ExpansionObs {
            calls: reg.counter(&format!("{prefix}expansion.calls")),
            candidate_sets: reg.counter(&format!("{prefix}expansion.candidate_sets")),
            tag_reads: reg.counter(&format!("{prefix}expansion.tag_reads")),
            matched_lines: reg.counter(&format!("{prefix}expansion.matched_lines")),
        }
    }
}

/// Counters for the memory overflow area (paper §6.2.2): spills of
/// speculative dirty lines past the cache, lookups on miss, and the
/// sequential walks commit/squash must perform.
#[derive(Debug, Clone)]
pub struct OverflowObs {
    /// Lines spilled into the overflow area.
    pub spills: Counter,
    /// Lookups (cache misses with the O bit set).
    pub lookups: Counter,
    /// Lookups that found the line in the overflow area.
    pub hits: Counter,
    /// Entries touched by sequential walks (disambiguation or
    /// deallocation).
    pub walked_entries: Counter,
    /// High-water mark of resident overflow lines.
    pub resident_max: Gauge,
}

impl OverflowObs {
    /// Registers the overflow counters under `prefix`.
    pub fn register(reg: &Registry, prefix: &str) -> Self {
        OverflowObs {
            spills: reg.counter(&format!("{prefix}overflow.spills")),
            lookups: reg.counter(&format!("{prefix}overflow.lookups")),
            hits: reg.counter(&format!("{prefix}overflow.hits")),
            walked_entries: reg.counter(&format!("{prefix}overflow.walked_entries")),
            resident_max: reg.gauge(&format!("{prefix}overflow.resident_max")),
        }
    }
}

/// Counters holding the machine's final Fig. 13 cycle breakdown, filled
/// once per run by [`RuntimeObs::finish_cycle_accounting`]. The six
/// per-actor categories (`useful + squashed + commit + stall + overhead
/// + other`) sum exactly to `total` whenever `audit_violations` is zero
/// — the conservation invariant.
#[derive(Debug, Clone)]
pub struct CycleObs {
    /// Committed speculative-section cycles.
    pub useful: Counter,
    /// Squashed speculative-section cycles.
    pub squashed: Counter,
    /// Commit arbitration + broadcast cycles on actor timelines.
    pub commit: Counter,
    /// Conflict-stall and backoff-wait cycles.
    pub stall: Counter,
    /// Squash/rollback, context-switch, checkpoint and spill cycles.
    pub overhead: Counter,
    /// Non-speculative execution, dispatch gaps and idle tails.
    pub other: Counter,
    /// Commit broadcast cycles on the bus lane (TLS: overlaps execution).
    pub commit_bus: Counter,
    /// Total cycles across all actor timelines.
    pub total: Counter,
    /// Conservation-audit failures found while reducing the trace.
    pub audit_violations: Counter,
}

impl CycleObs {
    /// Registers the breakdown counters under `prefix`.
    pub fn register(reg: &Registry, prefix: &str) -> Self {
        CycleObs {
            useful: reg.counter(&format!("{prefix}cycles.useful")),
            squashed: reg.counter(&format!("{prefix}cycles.squashed")),
            commit: reg.counter(&format!("{prefix}cycles.commit")),
            stall: reg.counter(&format!("{prefix}cycles.stall")),
            overhead: reg.counter(&format!("{prefix}cycles.overhead")),
            other: reg.counter(&format!("{prefix}cycles.other")),
            commit_bus: reg.counter(&format!("{prefix}cycles.commit_bus")),
            total: reg.counter(&format!("{prefix}cycles.total")),
            audit_violations: reg.counter(&format!("{prefix}cycles.audit_violations")),
        }
    }
}

/// The full instrumentation bundle a machine (TM or TLS) holds: one
/// handle per metric it maintains, plus the shared [`Obs`] so protocol
/// steps can also be recorded as events.
///
/// All handles live under the prefix given to [`RuntimeObs::attach`]
/// (`"tm."` or `"tls."`). The `on_*` methods are the machines' single
/// instrumentation surface; each is one or two atomic ops plus, where
/// the step is a typed protocol event, an [`EventLog::record`]
/// (ring-buffer push).
///
/// [`EventLog::record`]: crate::EventLog::record
#[derive(Debug, Clone)]
pub struct RuntimeObs {
    obs: Arc<Obs>,
    /// Trace track (Chrome-export process) this machine's spans live on.
    pub track: u32,
    /// The run's final cycle breakdown (filled by
    /// [`RuntimeObs::finish_cycle_accounting`]).
    pub cycles: CycleObs,
    /// Successful commits.
    pub commits: Counter,
    /// Commit broadcast payload sizes in bytes.
    pub commit_payload_bytes: Histogram,
    /// Exact committed write-set sizes (lines for TM, words for TLS).
    pub commit_writes: Histogram,
    /// Commit latency in cycles: arbitration request (or bus grant) to
    /// broadcast completion. Quantiles (`Histogram::quantile`) feed the
    /// p50/p95/p99 lines in the CLI report and the Prometheus summary.
    pub commit_latency: Histogram,
    /// Total squashes (`= squash_true_conflict + squash_aliasing`).
    pub squashes: Counter,
    /// Squashes the oracle confirms (real data dependence).
    pub squash_true_conflict: Counter,
    /// Squashes caused purely by signature aliasing.
    pub squash_aliasing: Counter,
    /// Exact dependence-set sizes of true-conflict squashes.
    pub squash_dep: Histogram,
    /// Lines invalidated by bulk invalidations.
    pub inv_lines: Counter,
    /// Of those, lines the committer exactly wrote.
    pub inv_exact: Counter,
    /// Of those, aliasing overshoot (`inv_lines - inv_exact`).
    pub inv_overshoot: Counter,
    /// Forced context switches (signature spill + reload).
    pub ctx_switches: Counter,
    /// Escalations to the non-speculative fallback.
    pub escalations: Counter,
    /// Disambiguation verdicts vs. the exact oracle.
    pub verdicts: VerdictCounters,
    /// Backoff waits issued by the liveness engine.
    pub live_backoff_waits: Counter,
    /// Sizes of those waits, in cycles.
    pub live_backoff_cycles: Histogram,
    /// Watchdog trips (livelock / starvation / global stall).
    pub live_watchdog_trips: Counter,
    /// Arbiter crashes survived via epoch re-election.
    pub live_arbiter_crashes: Counter,
    /// Current arbiter epoch (high-water mark).
    pub live_arbiter_epoch: Gauge,
    /// Duplicate commit deliveries dropped by `(committer, serial)` dedup.
    pub live_dedup_drops: Counter,
    /// Crash-consistent checkpoints captured at context switches.
    pub live_checkpoints: Counter,
    /// The machine-side signature expansion counters.
    pub expansion: ExpansionObs,
    /// Counters to clone into the machine's overflow area, if it has one.
    pub overflow: OverflowObs,
}

impl RuntimeObs {
    /// Builds the bundle against `obs`, registering every handle under
    /// `prefix` (use `"tm."` / `"tls."`).
    pub fn attach(obs: Arc<Obs>, prefix: &str) -> Self {
        let reg = obs.registry();
        let bytes_edges = Histogram::pow2_edges(14); // 1 B .. 16 KiB
        let size_edges = Histogram::pow2_edges(10); // 1 .. 1024 lines/words
        let bundle = RuntimeObs {
            track: obs.trace().register_track(prefix),
            cycles: CycleObs::register(reg, prefix),
            commits: reg.counter(&format!("{prefix}commits")),
            commit_payload_bytes: reg
                .histogram(&format!("{prefix}commit.payload_bytes"), &bytes_edges),
            commit_writes: reg.histogram(&format!("{prefix}commit.writes"), &size_edges),
            commit_latency: reg.histogram(
                &format!("{prefix}commit.latency_cycles"),
                &Histogram::pow2_edges(20), // 1 .. ~1M cycles
            ),
            squashes: reg.counter(&format!("{prefix}squashes")),
            squash_true_conflict: reg.counter(&format!("{prefix}squash.true_conflict")),
            squash_aliasing: reg.counter(&format!("{prefix}squash.aliasing")),
            squash_dep: reg.histogram(&format!("{prefix}squash.dep_size"), &size_edges),
            inv_lines: reg.counter(&format!("{prefix}invalidate.lines")),
            inv_exact: reg.counter(&format!("{prefix}invalidate.exact")),
            inv_overshoot: reg.counter(&format!("{prefix}invalidate.overshoot")),
            ctx_switches: reg.counter(&format!("{prefix}ctx_switches")),
            escalations: reg.counter(&format!("{prefix}escalations")),
            verdicts: VerdictCounters::register(reg, prefix),
            live_backoff_waits: reg.counter(&format!("{prefix}live.backoff_waits")),
            live_backoff_cycles: reg
                .histogram(&format!("{prefix}live.backoff_cycles"), &bytes_edges),
            live_watchdog_trips: reg.counter(&format!("{prefix}live.watchdog_trips")),
            live_arbiter_crashes: reg.counter(&format!("{prefix}live.arbiter_crashes")),
            live_arbiter_epoch: reg.gauge(&format!("{prefix}live.arbiter_epoch")),
            live_dedup_drops: reg.counter(&format!("{prefix}live.dedup_drops")),
            live_checkpoints: reg.counter(&format!("{prefix}live.checkpoints")),
            expansion: ExpansionObs::register(reg, prefix),
            overflow: OverflowObs::register(reg, prefix),
            obs,
        };
        bundle
    }

    /// The shared observability bundle the handles record into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The shared span trace (this machine's spans live on
    /// [`RuntimeObs::track`]).
    pub fn trace(&self) -> &TraceLog {
        self.obs.trace()
    }

    /// Opens a span at `start` on `actor`'s timeline.
    pub fn span_begin(&self, actor: u32, kind: SpanKind, start: u64, detail: u64) -> SpanId {
        self.obs.trace().begin(self.track, actor, kind, start, None, detail)
    }

    /// Opens a span nested under `parent`.
    pub fn span_child(
        &self,
        actor: u32,
        kind: SpanKind,
        start: u64,
        detail: u64,
        parent: SpanId,
    ) -> SpanId {
        self.obs.trace().begin(self.track, actor, kind, start, Some(parent), detail)
    }

    /// Records an already-closed span `[start, end]`.
    pub fn span_complete(
        &self,
        actor: u32,
        kind: SpanKind,
        start: u64,
        end: u64,
        detail: u64,
    ) -> SpanId {
        self.obs.trace().complete(self.track, actor, kind, start, end, None, detail)
    }

    /// Closes span `id` at `cycle`.
    pub fn span_end(&self, id: SpanId, cycle: u64) {
        self.obs.trace().end(id, cycle);
    }

    /// Resolves a section span's outcome.
    pub fn span_outcome(&self, id: SpanId, outcome: SpanOutcome) {
        self.obs.trace().set_outcome(id, outcome);
    }

    /// Links `cause` → `effect` (commit broadcast → squash /
    /// bulk-invalidation it triggered).
    pub fn span_link(&self, cause: SpanId, effect: SpanId) {
        self.obs.trace().link(cause, effect);
    }

    /// Reduces this machine's trace into the Fig. 13 cycle breakdown and
    /// publishes it through [`RuntimeObs::cycles`]. `totals[a]` is actor
    /// `a`'s final clock. Call once, at the end of the run; the returned
    /// breakdown carries any conservation-audit violations so the caller
    /// can feed them to its invariant auditor.
    pub fn finish_cycle_accounting(&self, totals: &[u64]) -> CycleBreakdown {
        let mut br = cycle_accounting(&self.obs.trace().spans(), self.track, totals);
        let dropped = self.obs.trace().dropped();
        if dropped > 0 {
            br.violations.push(AccountingViolation {
                actor: u32::MAX,
                cycle: 0,
                detail: format!("trace ring dropped {dropped} spans; accounting is incomplete"),
            });
        }
        self.cycles.useful.add(br.useful);
        self.cycles.squashed.add(br.squashed);
        self.cycles.commit.add(br.commit);
        self.cycles.stall.add(br.stall);
        self.cycles.overhead.add(br.overhead);
        self.cycles.other.add(br.other);
        self.cycles.commit_bus.add(br.commit_bus);
        self.cycles.total.add(br.total);
        self.cycles.audit_violations.add(br.violations.len() as u64);
        br
    }

    /// A commit broadcast: `payload_bytes` on the bus carrying an exact
    /// write set of `writes` lines/words, completing `latency` cycles
    /// after the commit was requested.
    pub fn on_commit(&self, actor: u32, cycle: u64, payload_bytes: u64, writes: u64, latency: u64) {
        self.commits.inc();
        self.commit_payload_bytes.observe(payload_bytes);
        self.commit_writes.observe(writes);
        self.commit_latency.observe(latency);
        self.obs.events().record(
            actor,
            cycle,
            EventKind::CommitBroadcast { payload_bytes, writes },
        );
    }

    /// A squash, attributed by the oracle: `dep` is the exact
    /// dependence-set size (0 when `truly_conflicting` is false).
    pub fn on_squash(&self, actor: u32, cycle: u64, truly_conflicting: bool, dep: u64) {
        self.squashes.inc();
        let cause = SquashCause::from_oracle(truly_conflicting);
        match cause {
            SquashCause::TrueConflict => {
                self.squash_true_conflict.inc();
                self.squash_dep.observe(dep);
            }
            SquashCause::Aliasing => self.squash_aliasing.inc(),
        }
        self.obs
            .events()
            .record(actor, cycle, EventKind::Squash { cause, dep });
    }

    /// A bulk invalidation that wiped `lines` cache lines of which the
    /// committer exactly wrote `exact`.
    pub fn on_bulk_invalidate(&self, actor: u32, cycle: u64, lines: u64, exact: u64) {
        let overshoot = lines.saturating_sub(exact);
        self.inv_lines.add(lines);
        self.inv_exact.add(exact);
        self.inv_overshoot.add(overshoot);
        if lines > 0 {
            self.obs.events().record(
                actor,
                cycle,
                EventKind::BulkInvalidate { lines, exact, overshoot },
            );
        }
    }

    /// A speculative dirty line spilled to the overflow area, which now
    /// holds `resident` lines.
    pub fn on_overflow_spill(&self, actor: u32, cycle: u64, resident: u64) {
        self.obs
            .events()
            .record(actor, cycle, EventKind::Overflow { resident });
    }

    /// A forced context switch of the running speculative version.
    pub fn on_ctx_switch(&self, actor: u32, cycle: u64) {
        self.ctx_switches.inc();
        self.obs.events().record(actor, cycle, EventKind::CtxSwitch);
    }

    /// An escalation to the non-speculative fallback.
    pub fn on_escalation(&self, actor: u32, cycle: u64) {
        self.escalations.inc();
        self.obs.events().record(actor, cycle, EventKind::Escalation);
    }

    /// A liveness-engine backoff wait of `cycles` issued to `actor`
    /// before its retry. Zero-cycle waits are counted but not logged.
    pub fn on_backoff(&self, actor: u32, cycle: u64, cycles: u64) {
        self.live_backoff_waits.inc();
        self.live_backoff_cycles.observe(cycles);
        if cycles > 0 {
            self.obs
                .events()
                .record(actor, cycle, EventKind::Backoff { cycles });
        }
    }

    /// The watchdog tripped with violation kind `kind` (kebab-case).
    pub fn on_watchdog_trip(&self, actor: u32, cycle: u64, kind: &'static str) {
        self.live_watchdog_trips.inc();
        self.obs
            .events()
            .record(actor, cycle, EventKind::WatchdogTrip { kind });
    }

    /// The commit arbiter crashed mid-broadcast (the committing `actor`'s
    /// message will be replayed) and `epoch` was elected.
    pub fn on_arbiter_failover(&self, actor: u32, cycle: u64, epoch: u64) {
        self.live_arbiter_crashes.inc();
        self.live_arbiter_epoch.record_max(epoch);
        self.obs
            .events()
            .record(actor, cycle, EventKind::ArbiterFailover { epoch });
    }

    /// A duplicate commit delivery was dropped by the dedup filter.
    pub fn on_dedup_drop(&self) {
        self.live_dedup_drops.inc();
    }

    /// A crash-consistent checkpoint was captured at a context switch.
    pub fn on_checkpoint(&self) {
        self.live_checkpoints.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_registers_prefixed_handles() {
        let obs = Arc::new(Obs::new());
        let r = RuntimeObs::attach(Arc::clone(&obs), "tm.");
        r.on_commit(0, 100, 64, 3, 20);
        r.on_squash(1, 120, false, 0);
        r.on_squash(2, 130, true, 4);
        r.on_bulk_invalidate(1, 140, 5, 4);
        r.on_ctx_switch(0, 150);
        r.on_escalation(2, 160);
        let reg = obs.registry();
        assert_eq!(reg.counter_value("tm.commits"), 1);
        assert_eq!(reg.counter_value("tm.squashes"), 2);
        assert_eq!(reg.counter_value("tm.squash.aliasing"), 1);
        assert_eq!(reg.counter_value("tm.squash.true_conflict"), 1);
        assert_eq!(reg.counter_value("tm.invalidate.overshoot"), 1);
        assert_eq!(reg.counter_value("tm.ctx_switches"), 1);
        assert_eq!(reg.counter_value("tm.escalations"), 1);
        // squash split sums to total
        assert_eq!(
            reg.counter_value("tm.squashes"),
            reg.counter_value("tm.squash.true_conflict")
                + reg.counter_value("tm.squash.aliasing")
        );
        assert_eq!(obs.events().len(), 6);
        assert_eq!(r.commit_latency.count(), 1);
        assert_eq!(r.commit_latency.quantile(0.5), Some(32.0), "20 -> le=32 bucket");
    }

    #[test]
    fn zero_line_invalidation_counts_but_emits_no_event() {
        let obs = Arc::new(Obs::new());
        let r = RuntimeObs::attach(Arc::clone(&obs), "tls.");
        r.on_bulk_invalidate(0, 10, 0, 0);
        assert!(obs.events().is_empty());
        assert_eq!(obs.registry().counter_value("tls.invalidate.lines"), 0);
    }

    #[test]
    fn liveness_hooks_register_and_record() {
        let obs = Arc::new(Obs::new());
        let r = RuntimeObs::attach(Arc::clone(&obs), "tm.");
        r.on_backoff(0, 100, 48);
        r.on_backoff(1, 110, 0);
        r.on_watchdog_trip(1, 200, "livelock");
        r.on_arbiter_failover(0, 300, 2);
        r.on_dedup_drop();
        r.on_checkpoint();
        let reg = obs.registry();
        assert_eq!(reg.counter_value("tm.live.backoff_waits"), 2);
        assert_eq!(reg.counter_value("tm.live.watchdog_trips"), 1);
        assert_eq!(reg.counter_value("tm.live.arbiter_crashes"), 1);
        assert_eq!(reg.counter_value("tm.live.dedup_drops"), 1);
        assert_eq!(reg.counter_value("tm.live.checkpoints"), 1);
        // Zero-cycle waits are counted but emit no event.
        assert_eq!(obs.events().len(), 3);
        let gauges = reg.gauges();
        assert!(gauges.contains(&("tm.live.arbiter_epoch".to_string(), 2)));
    }

    #[test]
    fn span_helpers_and_accounting_publish_counters() {
        let obs = Arc::new(Obs::new());
        let r = RuntimeObs::attach(Arc::clone(&obs), "tm.");
        let sec = r.span_begin(0, SpanKind::Section, 0, 1);
        r.span_end(sec, 80);
        r.span_outcome(sec, SpanOutcome::Useful);
        let c = r.span_complete(0, SpanKind::Commit, 80, 100, 1);
        let sq = r.span_complete(1, SpanKind::Squash, 100, 110, 0);
        r.span_link(c, sq);
        let br = r.finish_cycle_accounting(&[100, 150]);
        assert!(br.violations.is_empty());
        assert!(br.conserves());
        let reg = obs.registry();
        assert_eq!(reg.counter_value("tm.cycles.useful"), 80);
        assert_eq!(reg.counter_value("tm.cycles.commit"), 20);
        assert_eq!(reg.counter_value("tm.cycles.overhead"), 10);
        assert_eq!(reg.counter_value("tm.cycles.total"), 250);
        assert_eq!(reg.counter_value("tm.cycles.audit_violations"), 0);
        assert_eq!(
            reg.counter_value("tm.cycles.useful")
                + reg.counter_value("tm.cycles.squashed")
                + reg.counter_value("tm.cycles.commit")
                + reg.counter_value("tm.cycles.stall")
                + reg.counter_value("tm.cycles.overhead")
                + reg.counter_value("tm.cycles.other"),
            reg.counter_value("tm.cycles.total"),
            "conservation invariant"
        );
        assert_eq!(obs.trace().spans()[2].cause, Some(c.raw()));
    }

    #[test]
    fn two_machines_share_one_trace_on_distinct_tracks() {
        let obs = Arc::new(Obs::new());
        let tm = RuntimeObs::attach(Arc::clone(&obs), "tm.");
        let tls = RuntimeObs::attach(Arc::clone(&obs), "tls.");
        assert_ne!(tm.track, tls.track);
        tm.span_complete(0, SpanKind::Commit, 0, 10, 0);
        tls.span_complete(0, SpanKind::Commit, 0, 30, 0);
        let br = tls.finish_cycle_accounting(&[40]);
        assert_eq!(br.commit, 30, "only the tls track is reduced");
    }

    #[test]
    fn overflow_obs_names() {
        let reg = Registry::new();
        let o = OverflowObs::register(&reg, "mem.");
        o.spills.inc();
        o.resident_max.record_max(7);
        assert_eq!(reg.counter_value("mem.overflow.spills"), 1);
        assert_eq!(reg.gauges(), vec![("mem.overflow.resident_max".to_string(), 7)]);
    }
}
