//! False-positive attribution: cross-checking every signature-based
//! disambiguation verdict against the exact per-address oracle.
//!
//! The paper's signatures (§3) answer "did the committed write set
//! intersect the receiver's sets?" approximately: an intersection of
//! signatures may be non-empty even though the underlying address sets
//! are disjoint (aliasing), which costs squashes and invalidations but
//! never correctness. The simulated machines also keep the exact address
//! sets, so every verdict `W_C ∩ R_R ∨ W_C ∩ W_R` can be classified
//! against ground truth. This module holds that classification and its
//! counters — the runtime form of the paper's Figure 9 / Table 7
//! false-positive accounting.

use crate::metrics::{Counter, Registry};

/// Classification of one disambiguation verdict against the exact oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Signatures intersected and the exact sets intersect: a necessary
    /// squash.
    TruePositive,
    /// Signatures intersected but the exact sets are disjoint: an
    /// aliasing-induced (false-positive) squash.
    FalsePositive,
    /// Neither intersects: correctly left alone.
    TrueNegative,
    /// The exact sets intersect but the signatures missed it. Signatures
    /// are superset encodings, so this must never happen; it is counted
    /// (rather than asserted) so a run can surface an encoding bug as
    /// data.
    FalseNegative,
}

impl Verdict {
    /// Classifies a signature decision against the oracle's.
    pub fn classify(signature_conflict: bool, oracle_conflict: bool) -> Self {
        match (signature_conflict, oracle_conflict) {
            (true, true) => Verdict::TruePositive,
            (true, false) => Verdict::FalsePositive,
            (false, false) => Verdict::TrueNegative,
            (false, true) => Verdict::FalseNegative,
        }
    }

    /// Whether the signature decision agreed with the oracle.
    pub fn is_correct(self) -> bool {
        matches!(self, Verdict::TruePositive | Verdict::TrueNegative)
    }
}

/// Counters for the four [`Verdict`] outcomes of a disambiguation site.
///
/// Registered under `{prefix}verdict.{true_positive,false_positive,
/// true_negative,false_negative}`.
#[derive(Debug, Clone)]
pub struct VerdictCounters {
    /// Necessary squashes (signature and oracle both say conflict).
    pub true_positive: Counter,
    /// Aliasing-induced squashes (signature says conflict, oracle says no).
    pub false_positive: Counter,
    /// Correct all-clears.
    pub true_negative: Counter,
    /// Missed conflicts — must stay zero for a correct signature encoding.
    pub false_negative: Counter,
}

impl VerdictCounters {
    /// Registers the four outcome counters under `prefix`.
    pub fn register(reg: &Registry, prefix: &str) -> Self {
        VerdictCounters {
            true_positive: reg.counter(&format!("{prefix}verdict.true_positive")),
            false_positive: reg.counter(&format!("{prefix}verdict.false_positive")),
            true_negative: reg.counter(&format!("{prefix}verdict.true_negative")),
            false_negative: reg.counter(&format!("{prefix}verdict.false_negative")),
        }
    }

    /// Classifies and counts one verdict, returning the classification.
    #[inline]
    pub fn record(&self, signature_conflict: bool, oracle_conflict: bool) -> Verdict {
        let v = Verdict::classify(signature_conflict, oracle_conflict);
        match v {
            Verdict::TruePositive => self.true_positive.inc(),
            Verdict::FalsePositive => self.false_positive.inc(),
            Verdict::TrueNegative => self.true_negative.inc(),
            Verdict::FalseNegative => self.false_negative.inc(),
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_truth_table() {
        assert_eq!(Verdict::classify(true, true), Verdict::TruePositive);
        assert_eq!(Verdict::classify(true, false), Verdict::FalsePositive);
        assert_eq!(Verdict::classify(false, false), Verdict::TrueNegative);
        assert_eq!(Verdict::classify(false, true), Verdict::FalseNegative);
        assert!(Verdict::TrueNegative.is_correct());
        assert!(!Verdict::FalsePositive.is_correct());
    }

    #[test]
    fn counters_track_each_outcome() {
        let reg = Registry::new();
        let vc = VerdictCounters::register(&reg, "tm.");
        vc.record(true, true);
        vc.record(true, false);
        vc.record(true, false);
        vc.record(false, false);
        assert_eq!(reg.counter_value("tm.verdict.true_positive"), 1);
        assert_eq!(reg.counter_value("tm.verdict.false_positive"), 2);
        assert_eq!(reg.counter_value("tm.verdict.true_negative"), 1);
        assert_eq!(reg.counter_value("tm.verdict.false_negative"), 0);
    }
}
