//! Prometheus text exposition (format version 0.0.4) for the metrics
//! [`Registry`], plus a strict parser used to parse-check scrapes in
//! tests and smoke scripts.
//!
//! The encoder is hand-rolled and dependency-free, consistent with the
//! hermetic offline build. It renders one or more *scopes* — a label set
//! plus a registry — into a single exposition document:
//!
//! * every metric name is prefixed with the `bulk_` namespace and
//!   sanitized to the Prometheus grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`;
//!   the registry's dotted names become underscored),
//! * label values are escaped per the exposition format (`\\`, `\"`,
//!   `\n`),
//! * counters and gauges render as single samples,
//! * histograms render with cumulative `_bucket{le="…"}` samples
//!   (including the mandatory `le="+Inf"`), `_sum` and `_count`, and
//!   additionally as a synthetic `_summary` family carrying the
//!   upper-edge p50/p95/p99 estimates from
//!   [`Histogram::quantile`](crate::Histogram::quantile).
//!
//! Scopes let one scrape surface carry many concurrent runs: the daemon
//! hands the encoder its own registry (no labels) plus each job's
//! registry under `{job=…, machine=…, scheme=…, runtime=…}` labels, and
//! identical registry state always encodes byte-identically (families
//! sorted by name, samples in scope order, buckets in edge order).

use std::collections::BTreeMap;

use crate::metrics::Registry;

/// Quantiles rendered in every histogram's synthetic `_summary` family.
pub const SUMMARY_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// Namespace prefix applied to every encoded metric name.
pub const NAMESPACE: &str = "bulk_";

/// One labelled registry to encode: all samples from `registry` carry
/// `labels` (in the given order) on the scrape surface.
#[derive(Debug, Clone)]
pub struct Scope<'a> {
    /// Label pairs applied to every sample of this scope.
    pub labels: Vec<(String, String)>,
    /// The registry whose metrics the scope exposes.
    pub registry: &'a Registry,
}

impl<'a> Scope<'a> {
    /// A scope with no labels (a process-level registry).
    pub fn unlabelled(registry: &'a Registry) -> Self {
        Scope { labels: Vec::new(), registry }
    }

    /// A scope whose samples carry the given label pairs.
    pub fn labelled(labels: &[(&str, &str)], registry: &'a Registry) -> Self {
        Scope {
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            registry,
        }
    }
}

/// Sanitizes a metric name to the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every other character becomes `_`, and a
/// leading digit gains a `_` prefix. The empty string becomes `"_"`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Sanitizes a label name to `[a-zA-Z_][a-zA-Z0-9_]*` (no colons, unlike
/// metric names).
pub fn sanitize_label_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the text exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_label_value`].
///
/// # Errors
///
/// Returns a message when the input contains an invalid escape sequence,
/// a trailing lone backslash, or an unescaped quote/newline.
pub fn unescape_label_value(v: &str) -> Result<String, String> {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => return Err(format!("invalid escape `\\{other}`")),
                None => return Err("trailing lone backslash".to_string()),
            },
            '"' => return Err("unescaped quote in label value".to_string()),
            '\n' => return Err("unescaped newline in label value".to_string()),
            c => out.push(c),
        }
    }
    Ok(out)
}

/// Renders a finite or non-finite value the way Prometheus expects.
fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a label block: base labels plus an optional extra pair
/// (`le`/`quantile`). Empty → no braces.
fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_label_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(&v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

#[derive(Debug)]
struct Family {
    kind: &'static str,
    lines: Vec<String>,
}

/// Adds `line` to family `name` of `kind`. First type wins: a later scope
/// whose same-named metric has a different type is dropped rather than
/// corrupting the family (registries cannot produce this internally; it
/// would take two scopes disagreeing about a name).
fn push_line(
    families: &mut BTreeMap<String, Family>,
    name: &str,
    kind: &'static str,
    line: String,
) {
    let fam = families
        .entry(name.to_string())
        .or_insert_with(|| Family { kind, lines: Vec::new() });
    if fam.kind == kind {
        fam.lines.push(line);
    }
}

/// Encodes the scopes as one Prometheus text-exposition document.
/// Families are sorted by name; within a family, samples appear in scope
/// order (then bucket order). Identical registry state encodes
/// byte-identically.
pub fn encode(scopes: &[Scope<'_>]) -> String {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for scope in scopes {
        let base_labels = &scope.labels;
        for (name, value) in scope.registry.counters() {
            let fam = format!("{NAMESPACE}{}", sanitize_metric_name(&name));
            let line = format!("{fam}{} {value}", label_block(base_labels, None));
            push_line(&mut families, &fam, "counter", line);
        }
        for (name, value) in scope.registry.gauges() {
            let fam = format!("{NAMESPACE}{}", sanitize_metric_name(&name));
            let line = format!("{fam}{} {value}", label_block(base_labels, None));
            push_line(&mut families, &fam, "gauge", line);
        }
        for (name, h) in scope.registry.histograms() {
            let fam = format!("{NAMESPACE}{}", sanitize_metric_name(&name));
            let mut cum = 0u64;
            let mut lines = Vec::new();
            for (edge, n) in h.edges().iter().zip(h.bucket_counts()) {
                cum += n;
                lines.push(format!(
                    "{fam}_bucket{} {cum}",
                    label_block(base_labels, Some(("le", edge.to_string())))
                ));
            }
            lines.push(format!(
                "{fam}_bucket{} {}",
                label_block(base_labels, Some(("le", "+Inf".to_string()))),
                h.count()
            ));
            lines.push(format!("{fam}_sum{} {}", label_block(base_labels, None), h.sum()));
            lines.push(format!("{fam}_count{} {}", label_block(base_labels, None), h.count()));
            for line in lines {
                push_line(&mut families, &fam, "histogram", line);
            }
            // Synthetic summary: upper-edge quantile estimates, so a
            // scraper sees p50/p95/p99 without running histogram_quantile.
            let sfam = format!("{fam}_summary");
            for q in SUMMARY_QUANTILES {
                let v = h.quantile(q).unwrap_or(f64::NAN);
                let line = format!(
                    "{sfam}{} {}",
                    label_block(base_labels, Some(("quantile", render_value(q)))),
                    render_value(v)
                );
                push_line(&mut families, &sfam, "summary", line);
            }
            let sum_line = format!("{sfam}_sum{} {}", label_block(base_labels, None), h.sum());
            push_line(&mut families, &sfam, "summary", sum_line);
            let count_line =
                format!("{sfam}_count{} {}", label_block(base_labels, None), h.count());
            push_line(&mut families, &sfam, "summary", count_line);
        }
    }
    let mut out = String::new();
    for (name, fam) in &families {
        out.push_str(&format!("# TYPE {name} {}\n", fam.kind));
        for line in &fam.lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// [`encode`] of a single unlabelled registry.
pub fn encode_registry(registry: &Registry) -> String {
    encode(&[Scope::unlabelled(registry)])
}

/// One parsed sample line of an exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// The sample's full metric name (e.g. `bulk_tm_commits_bucket`).
    pub name: String,
    /// Label pairs, unescaped, in document order.
    pub labels: Vec<(String, String)>,
    /// The sample value (`NaN`/`+Inf` parse to the IEEE values).
    pub value: f64,
}

/// A parsed exposition document: declared family types plus all samples.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `# TYPE` declarations: family name → type.
    pub types: BTreeMap<String, String>,
    /// Every sample line, in document order.
    pub samples: Vec<ParsedSample>,
}

impl Exposition {
    /// All samples named `name` (exact match).
    pub fn samples_named(&self, name: &str) -> Vec<&ParsedSample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The value of the unique sample with `name` and exactly the given
    /// label pairs (order-insensitive), if present.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples.iter().find_map(|s| {
            let matches = s.name == name
                && s.labels.len() == labels.len()
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v));
            matches.then_some(s.value)
        })
    }
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other.parse().map_err(|_| format!("bad sample value `{other}`")),
    }
}

/// Parses one sample line (`name{labels} value`).
fn parse_sample(line: &str) -> Result<ParsedSample, String> {
    let (name, rest) = match line.find(|c| c == '{' || c == ' ') {
        Some(i) => (&line[..i], &line[i..]),
        None => return Err(format!("sample line without value: `{line}`")),
    };
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name `{name}`"));
    }
    let mut labels = Vec::new();
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let close = find_label_block_end(body)
            .ok_or_else(|| format!("unterminated label block in `{line}`"))?;
        let (block, after) = (&body[..close], &body[close + 1..]);
        for pair in split_label_pairs(block)? {
            let (k, v) = pair;
            if !valid_label_name(&k) {
                return Err(format!("invalid label name `{k}`"));
            }
            labels.push((k, unescape_label_value(&v)?));
        }
        after
    } else {
        rest
    };
    let value = parse_value(rest.trim())?;
    Ok(ParsedSample { name: name.to_string(), labels, value })
}

/// Finds the index of the label block's closing `}` in `body` (which
/// starts just after `{`), honouring quoted, escaped values.
fn find_label_block_end(body: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Splits `k="v",k2="v2"` into raw (still-escaped) pairs.
fn split_label_pairs(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("label pair without `=`: `{rest}`"))?;
        let key = rest[..eq].trim().to_string();
        let after_eq = &rest[eq + 1..];
        let body = after_eq
            .strip_prefix('"')
            .ok_or_else(|| format!("label value not quoted: `{after_eq}`"))?;
        // Find the closing quote, honouring escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in body.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value: `{body}`"))?;
        out.push((key, body[..end].to_string()));
        rest = body[end + 1..].trim_start_matches(',').trim_start();
    }
    Ok(out)
}

/// Parses a full exposition document.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            if parts.next() == Some("TYPE") {
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {}: TYPE without name", lineno + 1))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {}: TYPE without kind", lineno + 1))?;
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {}: unknown TYPE kind `{kind}`", lineno + 1));
                }
                if exp.types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {}: duplicate TYPE for `{name}`", lineno + 1));
                }
            }
            continue; // HELP and other comments are free-form
        }
        let sample =
            parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        exp.samples.push(sample);
    }
    Ok(exp)
}

/// The family a sample belongs to: its own name, or — when the name ends
/// in a histogram/summary sub-sample suffix whose base is a declared
/// family — the base name.
fn family_of<'e>(exp: &'e Exposition, sample: &str) -> Option<&'e str> {
    if exp.types.contains_key(sample) {
        return exp.types.get_key_value(sample).map(|(k, _)| k.as_str());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample.strip_suffix(suffix) {
            if let Some((k, kind)) = exp.types.get_key_value(base) {
                if kind == "histogram" || kind == "summary" {
                    return Some(k.as_str());
                }
            }
        }
    }
    None
}

/// Parse-checks an exposition document strictly: every sample must
/// belong to a declared `# TYPE` family, and every histogram's buckets
/// must be cumulative-monotone with `le="+Inf"` equal to `_count`.
/// Returns `(families, samples)` counts on success.
///
/// # Errors
///
/// Returns a message describing the first violation.
pub fn validate(text: &str) -> Result<(usize, usize), String> {
    let exp = parse_exposition(text)?;
    for s in &exp.samples {
        if family_of(&exp, &s.name).is_none() {
            return Err(format!("sample `{}` has no # TYPE declaration", s.name));
        }
    }
    // Group histogram buckets per (family, non-le labels) and check
    // monotone cumulative counts against _count.
    let mut series: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    for s in &exp.samples {
        if let Some(base) = s.name.strip_suffix("_bucket") {
            if exp.types.get(base).map(String::as_str) != Some("histogram") {
                continue;
            }
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("bucket of `{base}` without le label"))?;
            let le_val = parse_value(&le.1)?;
            let key = (base.to_string(), non_le_labels(&s.labels));
            series.entry(key).or_default().push((le_val, s.value));
        } else if let Some(base) = s.name.strip_suffix("_count") {
            if exp.types.get(base).map(String::as_str) == Some("histogram") {
                counts.insert((base.to_string(), non_le_labels(&s.labels)), s.value);
            }
        }
    }
    for ((base, labels), buckets) in &series {
        let mut sorted = buckets.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prev = -1.0f64;
        for (le, cum) in &sorted {
            if *cum < prev {
                return Err(format!(
                    "histogram `{base}`{{{labels}}}: bucket le={le} count {cum} < previous {prev}"
                ));
            }
            prev = *cum;
        }
        match sorted.last() {
            Some((le, last)) if le.is_infinite() => {
                let count = counts.get(&(base.clone(), labels.clone())).copied();
                if count != Some(*last) {
                    return Err(format!(
                        "histogram `{base}`{{{labels}}}: +Inf bucket {last} != _count {count:?}"
                    ));
                }
            }
            _ => {
                return Err(format!("histogram `{base}`{{{labels}}}: missing le=\"+Inf\" bucket"))
            }
        }
    }
    Ok((exp.types.len(), exp.samples.len()))
}

/// Canonical rendering of a sample's labels minus `le`, for grouping.
fn non_le_labels(labels: &[(String, String)]) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .filter(|(k, _)| k != "le")
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    pairs.sort();
    pairs.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("tm.commits"), "tm_commits");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_label_name("job:id"), "job_id");
    }

    #[test]
    fn escapes_and_unescapes_label_values() {
        let raw = "a\\b\"c\nd";
        let esc = escape_label_value(raw);
        assert_eq!(esc, "a\\\\b\\\"c\\nd");
        assert_eq!(unescape_label_value(&esc).unwrap(), raw);
        assert!(unescape_label_value("trailing\\").is_err());
        assert!(unescape_label_value("bad\\x").is_err());
    }

    #[test]
    fn encodes_counters_gauges_histograms() {
        let reg = Registry::new();
        reg.counter("tm.commits").add(5);
        reg.gauge("jobs.running").set(2);
        let h = reg.histogram("tm.commit.latency_cycles", &[1, 4]);
        h.observe(1);
        h.observe(3);
        h.observe(9);
        let text = encode(&[Scope::labelled(&[("job", "j1")], &reg)]);
        assert!(text.contains("# TYPE bulk_tm_commits counter"));
        assert!(text.contains("bulk_tm_commits{job=\"j1\"} 5"));
        assert!(text.contains("# TYPE bulk_jobs_running gauge"));
        assert!(text
            .contains("bulk_tm_commit_latency_cycles_bucket{job=\"j1\",le=\"1\"} 1"));
        assert!(text
            .contains("bulk_tm_commit_latency_cycles_bucket{job=\"j1\",le=\"4\"} 2"));
        assert!(text
            .contains("bulk_tm_commit_latency_cycles_bucket{job=\"j1\",le=\"+Inf\"} 3"));
        assert!(text.contains("bulk_tm_commit_latency_cycles_sum{job=\"j1\"} 13"));
        assert!(text.contains("bulk_tm_commit_latency_cycles_count{job=\"j1\"} 3"));
        assert!(text.contains("# TYPE bulk_tm_commit_latency_cycles_summary summary"));
        assert!(text
            .contains("bulk_tm_commit_latency_cycles_summary{job=\"j1\",quantile=\"0.5\"} 4"));
        validate(&text).unwrap();
    }

    #[test]
    fn empty_histogram_summary_is_nan_and_still_validates() {
        let reg = Registry::new();
        reg.histogram("h", &[1]);
        let text = encode_registry(&reg);
        assert!(text.contains("bulk_h_summary{quantile=\"0.5\"} NaN"));
        validate(&text).unwrap();
    }

    #[test]
    fn multiple_scopes_share_families_in_scope_order() {
        let a = Registry::new();
        a.counter("commits").add(1);
        let b = Registry::new();
        b.counter("commits").add(2);
        let text = encode(&[
            Scope::labelled(&[("job", "a")], &a),
            Scope::labelled(&[("job", "b")], &b),
        ]);
        let type_lines = text.lines().filter(|l| l.starts_with("# TYPE")).count();
        assert_eq!(type_lines, 1, "one family, one TYPE line:\n{text}");
        let ia = text.find("job=\"a\"").unwrap();
        let ib = text.find("job=\"b\"").unwrap();
        assert!(ia < ib, "samples in scope order");
        validate(&text).unwrap();
    }

    #[test]
    fn parse_round_trips_labels() {
        let line = "m{job=\"a\\\\b\\\"c\",x=\"y\"} 4.5";
        let s = parse_sample(line).unwrap();
        assert_eq!(s.name, "m");
        assert_eq!(s.labels[0], ("job".to_string(), "a\\b\"c".to_string()));
        assert_eq!(s.labels[1], ("x".to_string(), "y".to_string()));
        assert_eq!(s.value, 4.5);
    }

    #[test]
    fn parse_handles_inf_and_nan() {
        assert_eq!(parse_sample("m 1").unwrap().value, 1.0);
        assert_eq!(parse_sample("m +Inf").unwrap().value, f64::INFINITY);
        assert!(parse_sample("m NaN").unwrap().value.is_nan());
        assert!(parse_sample("m{} oops").is_err());
        assert!(parse_sample("9bad 1").is_err());
    }

    #[test]
    fn validate_rejects_untyped_samples_and_broken_buckets() {
        assert!(validate("lonely_sample 3\n").is_err());
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\n\
                   h_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 3\n\
                   h_sum 9\nh_count 3\n";
        let err = validate(bad).unwrap_err();
        assert!(err.contains("< previous"), "{err}");
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate(no_inf).unwrap_err().contains("+Inf"));
        let wrong_count =
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n";
        assert!(validate(wrong_count).unwrap_err().contains("_count"));
    }

    #[test]
    fn identical_state_encodes_byte_identically() {
        let mk = || {
            let reg = Registry::new();
            reg.counter("z").add(3);
            reg.counter("a").inc();
            reg.gauge("g").set(7);
            let h = reg.histogram("h", &Histogram::pow2_edges(4));
            for v in [1, 2, 9, 40] {
                h.observe(v);
            }
            encode(&[Scope::labelled(&[("job", "x"), ("machine", "tm")], &reg)])
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn exposition_value_lookup() {
        let reg = Registry::new();
        reg.counter("c").add(9);
        let text = encode(&[Scope::labelled(&[("job", "j")], &reg)]);
        let exp = parse_exposition(&text).unwrap();
        assert_eq!(exp.value("bulk_c", &[("job", "j")]), Some(9.0));
        assert_eq!(exp.value("bulk_c", &[("job", "nope")]), None);
    }
}
