//! Span-based causal tracing and the Figure-13 cycle-accounting profiler.
//!
//! The metrics registry counts protocol steps and the event log orders
//! them, but neither can *explain* a run: which commit broadcast caused
//! which squash chain, and where each thread's cycles went. This module
//! adds the third observability pillar — traces:
//!
//! - [`TraceLog`] records [`Span`]s: windows of logical time on an
//!   actor's timeline (speculative section, commit arbitration/broadcast,
//!   squash + re-execution overhead, stall/backoff, overflow spill,
//!   checkpoint, context switch). Spans carry parent/child structure and
//!   **causal links**: a commit span records the ID of every squash and
//!   bulk-invalidation span it triggered, so a squash ping-pong renders
//!   as a visible chain.
//! - [`TraceLog::to_chrome_json`] exports the spans as Chrome
//!   trace-event / Perfetto-compatible JSON (`--trace-out` in the CLI).
//!   The export is deterministic: identical runs serialize
//!   byte-identically.
//! - [`cycle_accounting`] folds one track's spans into the paper's
//!   Fig. 13 execution-time categories (useful / squashed / commit /
//!   stall, plus squash-overhead and non-speculative "other"), with a
//!   conservation invariant — per actor, claimed time plus the remainder
//!   equals that actor's total cycles — audited like the PR-2 protocol
//!   invariants.
//!
//! Timestamps are machine cycles, not wall-clock time: the simulated
//! machines are deterministic, and the trace must be too. Trace viewers
//! display them as microseconds, which is harmless.

use std::sync::Mutex;

use crate::json_escape;

/// The protocol phase a [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A speculative section: one attempt at a transaction (TM) or task
    /// (TLS), from dispatch to commit-request or squash. The only
    /// non-leaf kind: leaf spans may nest inside its window.
    Section,
    /// Commit arbitration and broadcast: bus wait plus occupancy (and,
    /// under chaos, denied-retry backoff).
    Commit,
    /// Squash overhead: rollback wait plus the re-execution setup cost.
    Squash,
    /// An eager-scheme conflict stall (requester waits for the owner).
    Stall,
    /// A liveness-engine backoff wait before a retry.
    Backoff,
    /// A speculative dirty line spilled to the memory overflow area
    /// (marker: zero duration).
    Spill,
    /// A crash-consistent checkpoint captured at a context switch
    /// (marker: zero duration).
    Checkpoint,
    /// A forced context switch: signature spill plus reload.
    CtxSwitch,
    /// A receiver-side bulk invalidation selected by a committed write
    /// signature (marker: zero duration; causally linked to its commit).
    BulkInvalidate,
    /// A writer-side individual invalidation from a non-speculative
    /// store (marker: zero duration; the cause of any squash it
    /// triggers, the way a commit broadcast causes bulk squashes).
    Invalidate,
}

impl SpanKind {
    /// Stable lowercase tag used as the span name in the Chrome export.
    pub fn tag(self) -> &'static str {
        match self {
            SpanKind::Section => "section",
            SpanKind::Commit => "commit",
            SpanKind::Squash => "squash",
            SpanKind::Stall => "stall",
            SpanKind::Backoff => "backoff",
            SpanKind::Spill => "spill",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::CtxSwitch => "ctx_switch",
            SpanKind::BulkInvalidate => "bulk_invalidate",
            SpanKind::Invalidate => "invalidate",
        }
    }
}

/// How a [`SpanKind::Section`] attempt ended. Leaf spans stay
/// [`SpanOutcome::Pending`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanOutcome {
    /// Not resolved (leaf spans; sections still in flight when the run
    /// aborted). Pending section time falls into the "other" category.
    #[default]
    Pending,
    /// The attempt committed: its cycles were useful work.
    Useful,
    /// The attempt was squashed: its cycles were wasted speculation.
    Squashed,
}

impl SpanOutcome {
    /// Stable lowercase name used in the Chrome export `args`.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanOutcome::Pending => "pending",
            SpanOutcome::Useful => "useful",
            SpanOutcome::Squashed => "squashed",
        }
    }
}

/// Handle to a recorded span. Obtained from [`TraceLog::begin`] /
/// [`TraceLog::complete`]; pass it back to [`TraceLog::end`],
/// [`TraceLog::set_outcome`] and [`TraceLog::link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

impl SpanId {
    /// Sentinel returned when the trace ring is full and the span was
    /// dropped. Every operation on it is a no-op, so instrumentation
    /// sites never need to branch on overflow.
    pub const DROPPED: SpanId = SpanId(u64::MAX);

    /// Whether this is the overflow sentinel.
    pub fn is_dropped(self) -> bool {
        self == SpanId::DROPPED
    }

    /// The raw span index (meaningless for [`SpanId::DROPPED`]).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One recorded span: a window of logical time on an actor's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span ID (also its index in [`TraceLog::spans`]).
    pub id: u64,
    /// Track (machine) the span belongs to; see
    /// [`TraceLog::register_track`].
    pub track: u32,
    /// Actor timeline: thread index (TM) or processor index (TLS). An
    /// actor one past the machine's last timeline index is the bus lane
    /// (TLS commit broadcasts overlap processor execution).
    pub actor: u32,
    /// The protocol phase.
    pub kind: SpanKind,
    /// Start cycle.
    pub start: u64,
    /// End cycle; meaningful only when `ended` is true.
    pub end: u64,
    /// Whether [`TraceLog::end`] closed the span. Open spans export with
    /// zero duration and are clamped to the actor's total during
    /// accounting.
    pub ended: bool,
    /// Enclosing span (a commit's speculative section), if any.
    pub parent: Option<u64>,
    /// The span that causally triggered this one (a squash's commit
    /// broadcast), if any.
    pub cause: Option<u64>,
    /// IDs of spans this one triggered (filled by [`TraceLog::link`]).
    pub links: Vec<u64>,
    /// Section outcome; [`SpanOutcome::Pending`] for leaves.
    pub outcome: SpanOutcome,
    /// Free payload: transaction/task index for sections and commits,
    /// dependence-set size for squashes, lines for bulk invalidations.
    pub detail: u64,
}

#[derive(Debug, Default)]
struct TraceInner {
    tracks: Vec<String>,
    spans: Vec<Span>,
    dropped: u64,
}

/// Default span capacity: comfortably above every stock workload, small
/// enough to bound a runaway run.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// A bounded, shareable log of [`Span`]s.
#[derive(Debug)]
pub struct TraceLog {
    capacity: usize,
    inner: Mutex<TraceInner>,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// Creates a log with the default capacity.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Creates a log holding at most `capacity` spans; further spans are
    /// dropped (and counted) once it is full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceLog { capacity, inner: Mutex::new(TraceInner::default()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        self.inner.lock().expect("trace log poisoned")
    }

    /// Registers (or finds) the track named `name` — one per machine,
    /// e.g. `"tm."` / `"tls."` — and returns its ID. Tracks become
    /// Chrome-export processes.
    pub fn register_track(&self, name: &str) -> u32 {
        let mut inner = self.lock();
        if let Some(i) = inner.tracks.iter().position(|t| t == name) {
            return i as u32;
        }
        inner.tracks.push(name.to_string());
        (inner.tracks.len() - 1) as u32
    }

    /// Opens a span at `start` on `track`/`actor`. `parent` nests it
    /// under an enclosing span; `detail` is a free payload. Returns
    /// [`SpanId::DROPPED`] (a no-op handle) if the log is full.
    pub fn begin(
        &self,
        track: u32,
        actor: u32,
        kind: SpanKind,
        start: u64,
        parent: Option<SpanId>,
        detail: u64,
    ) -> SpanId {
        let mut inner = self.lock();
        if inner.spans.len() >= self.capacity {
            inner.dropped += 1;
            return SpanId::DROPPED;
        }
        let id = inner.spans.len() as u64;
        inner.spans.push(Span {
            id,
            track,
            actor,
            kind,
            start,
            end: start,
            ended: false,
            parent: parent.filter(|p| !p.is_dropped()).map(SpanId::raw),
            cause: None,
            links: Vec::new(),
            outcome: SpanOutcome::Pending,
            detail,
        });
        SpanId(id)
    }

    /// Records an already-closed span `[start, end]` in one call.
    pub fn complete(
        &self,
        track: u32,
        actor: u32,
        kind: SpanKind,
        start: u64,
        end: u64,
        parent: Option<SpanId>,
        detail: u64,
    ) -> SpanId {
        let id = self.begin(track, actor, kind, start, parent, detail);
        self.end(id, end);
        id
    }

    /// Closes `id` at `cycle`. No-op for [`SpanId::DROPPED`].
    pub fn end(&self, id: SpanId, cycle: u64) {
        if id.is_dropped() {
            return;
        }
        let mut inner = self.lock();
        if let Some(s) = inner.spans.get_mut(id.0 as usize) {
            s.end = cycle;
            s.ended = true;
        }
    }

    /// Sets the outcome of section span `id`. No-op for
    /// [`SpanId::DROPPED`].
    pub fn set_outcome(&self, id: SpanId, outcome: SpanOutcome) {
        if id.is_dropped() {
            return;
        }
        let mut inner = self.lock();
        if let Some(s) = inner.spans.get_mut(id.0 as usize) {
            s.outcome = outcome;
        }
    }

    /// Records that `cause` triggered `effect`: pushes `effect` onto the
    /// cause's link list and sets the effect's back-pointer. No-op if
    /// either side was dropped.
    pub fn link(&self, cause: SpanId, effect: SpanId) {
        if cause.is_dropped() || effect.is_dropped() || cause == effect {
            return;
        }
        let mut inner = self.lock();
        if (cause.0 as usize) < inner.spans.len() && (effect.0 as usize) < inner.spans.len() {
            inner.spans[cause.0 as usize].links.push(effect.0);
            inner.spans[effect.0 as usize].cause = Some(cause.0);
        }
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.lock().spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped because the log was full. Nonzero means cycle
    /// accounting over this trace is incomplete.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// A snapshot of the recorded spans, in record (ID) order.
    pub fn spans(&self) -> Vec<Span> {
        self.lock().spans.clone()
    }

    /// A snapshot of the registered track names, in ID order.
    pub fn tracks(&self) -> Vec<String> {
        self.lock().tracks.clone()
    }

    /// The trace as Chrome trace-event JSON (the `{"traceEvents": [...]}`
    /// object form), loadable by `chrome://tracing` and Perfetto.
    ///
    /// - each track becomes a process (`ph:"M"` `process_name` metadata),
    /// - each span a complete event (`ph:"X"`, `pid` = track, `tid` =
    ///   actor, `ts`/`dur` in cycles) whose `args` carry the span ID,
    ///   parent, cause, outcome, detail and causal links,
    /// - each causal link a flow pair (`ph:"s"` at the cause, `ph:"f"`
    ///   with `bp:"e"` at the effect) with the effect's span ID as the
    ///   flow ID.
    ///
    /// Field order, event order and number formatting are fixed, so
    /// identical runs export byte-identically.
    pub fn to_chrome_json(&self) -> String {
        let inner = self.lock();
        let mut events: Vec<String> = Vec::new();
        for (i, name) in inner.tracks.iter().enumerate() {
            events.push(format!(
                "{{\"ph\": \"M\", \"pid\": {i}, \"tid\": 0, \"name\": \"process_name\", \
                 \"args\": {{\"name\": \"{}\"}}}}",
                json_escape(name)
            ));
        }
        for s in &inner.spans {
            let dur = if s.ended { s.end.saturating_sub(s.start) } else { 0 };
            let parent = s.parent.map_or_else(|| "null".to_string(), |p| p.to_string());
            let cause = s.cause.map_or_else(|| "null".to_string(), |c| c.to_string());
            let links: Vec<String> = s.links.iter().map(u64::to_string).collect();
            events.push(format!(
                "{{\"ph\": \"X\", \"pid\": {}, \"tid\": {}, \"ts\": {}, \"dur\": {dur}, \
                 \"name\": \"{}\", \"cat\": \"bulk\", \"args\": {{\"span\": {}, \
                 \"parent\": {parent}, \"cause\": {cause}, \"outcome\": \"{}\", \
                 \"detail\": {}, \"links\": [{}]}}}}",
                s.track,
                s.actor,
                s.start,
                s.kind.tag(),
                s.id,
                s.outcome.as_str(),
                s.detail,
                links.join(", ")
            ));
        }
        for s in &inner.spans {
            let Some(c) = s.cause else { continue };
            let cs = &inner.spans[c as usize];
            let cause_ts = if cs.ended { cs.end } else { cs.start };
            events.push(format!(
                "{{\"ph\": \"s\", \"pid\": {}, \"tid\": {}, \"ts\": {}, \"id\": {}, \
                 \"name\": \"causal\", \"cat\": \"bulk\"}}",
                cs.track,
                cs.actor,
                cause_ts.min(s.start),
                s.id
            ));
            events.push(format!(
                "{{\"ph\": \"f\", \"pid\": {}, \"tid\": {}, \"ts\": {}, \"id\": {}, \
                 \"bp\": \"e\", \"name\": \"causal\", \"cat\": \"bulk\"}}",
                s.track, s.actor, s.start, s.id
            ));
        }
        if events.is_empty() {
            return "{\"traceEvents\": []}\n".to_string();
        }
        format!("{{\"traceEvents\": [\n{}\n]}}\n", events.join(",\n"))
    }
}

/// One conservation-audit failure found by [`cycle_accounting`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountingViolation {
    /// Actor timeline the failure is on (`u32::MAX` when global).
    pub actor: u32,
    /// Cycle the offending span starts at (0 when global).
    pub cycle: u64,
    /// Human-readable description.
    pub detail: String,
}

/// The Fig. 13 execution-time breakdown produced by
/// [`cycle_accounting`]. All values are cycles summed over actors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Speculative-section time of attempts that committed.
    pub useful: u64,
    /// Speculative-section time of attempts that were squashed.
    pub squashed: u64,
    /// Commit arbitration + broadcast time spent on actor timelines
    /// (the paper's "commit" wedge).
    pub commit: u64,
    /// Conflict-stall plus liveness-backoff wait time.
    pub stall: u64,
    /// Squash/rollback, context-switch, checkpoint and spill overhead.
    pub overhead: u64,
    /// Everything else: non-speculative execution, dispatch gaps and
    /// idle tails (and unresolved sections of aborted runs).
    pub other: u64,
    /// Commit broadcast time on the bus lane — TLS commits overlap
    /// processor execution, so this is reported next to, not inside, the
    /// per-actor categories.
    pub commit_bus: u64,
    /// Total cycles across all actor timelines (the conservation
    /// right-hand side).
    pub total: u64,
    /// Conservation-audit failures; empty on a well-formed trace.
    pub violations: Vec<AccountingViolation>,
}

impl CycleBreakdown {
    /// The conservation invariant: the six per-actor categories sum
    /// exactly to the total. Holds by construction whenever
    /// [`CycleBreakdown::violations`] is empty.
    pub fn conserves(&self) -> bool {
        self.useful + self.squashed + self.commit + self.stall + self.overhead + self.other
            == self.total
    }
}

fn window_overlap(a: (u64, u64), b: (u64, u64)) -> u64 {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    hi.saturating_sub(lo)
}

/// Folds the spans of `track` into the Fig. 13 cycle categories.
///
/// `totals[a]` is actor `a`'s final clock. Leaf spans claim their
/// duration directly (commit → commit, stall/backoff → stall, the rest →
/// overhead); a section claims its window *minus* the leaf time nested
/// inside it, into useful or squashed by outcome; whatever no actor
/// claimed is `other`. Spans on an actor index past `totals` are the bus
/// lane and accumulate into [`CycleBreakdown::commit_bus`].
///
/// The audit: overlapping same-actor leaves, overlapping sections, spans
/// running backwards or past their actor's total, and over-claimed
/// actors all push an [`AccountingViolation`]. With no violations the
/// categories sum exactly to `totals`' sum ([`CycleBreakdown::conserves`]).
pub fn cycle_accounting(spans: &[Span], track: u32, totals: &[u64]) -> CycleBreakdown {
    let mut br = CycleBreakdown { total: totals.iter().sum(), ..CycleBreakdown::default() };
    let n = totals.len();
    let mut leaves: Vec<Vec<&Span>> = (0..n).map(|_| Vec::new()).collect();
    let mut sections: Vec<Vec<&Span>> = (0..n).map(|_| Vec::new()).collect();
    for s in spans.iter().filter(|s| s.track == track) {
        let a = s.actor as usize;
        if a >= n {
            if s.kind == SpanKind::Commit {
                if s.ended && s.end >= s.start {
                    br.commit_bus += s.end - s.start;
                } else if s.ended {
                    br.violations.push(AccountingViolation {
                        actor: s.actor,
                        cycle: s.start,
                        detail: format!("bus-lane span {} runs backwards", s.id),
                    });
                }
            } else {
                br.violations.push(AccountingViolation {
                    actor: s.actor,
                    cycle: s.start,
                    detail: format!("non-commit span {} ({}) on bus lane", s.id, s.kind.tag()),
                });
            }
            continue;
        }
        if s.kind == SpanKind::Section {
            sections[a].push(s);
        } else {
            leaves[a].push(s);
        }
    }
    for a in 0..n {
        let total = totals[a];
        let eff = |s: &Span| if s.ended { s.end } else { total };
        leaves[a].sort_by_key(|s| (s.start, s.id));
        sections[a].sort_by_key(|s| (s.start, s.id));
        for s in leaves[a].iter().chain(sections[a].iter()) {
            let e = eff(s);
            if e < s.start {
                br.violations.push(AccountingViolation {
                    actor: a as u32,
                    cycle: s.start,
                    detail: format!("span {} ({}) runs backwards: [{}, {e}]", s.id, s.kind.tag(), s.start),
                });
            }
            // Zero-duration markers (e.g. a bulk invalidation delivered
            // at commit-finish to an actor that already retired) claim no
            // time and are exempt.
            if e > total && e > s.start {
                br.violations.push(AccountingViolation {
                    actor: a as u32,
                    cycle: s.start,
                    detail: format!(
                        "span {} ({}) ends at {e}, past actor total {total}",
                        s.id,
                        s.kind.tag()
                    ),
                });
            }
        }
        for group in [&leaves[a], &sections[a]] {
            let mut max_end = 0u64;
            let mut prev = 0u64;
            for s in group.iter() {
                let e = eff(s).max(s.start);
                // Zero-duration markers claim no time and may legitimately
                // land inside another span's window (e.g. a bulk
                // invalidation delivered mid-squash); they cannot overlap.
                if e == s.start {
                    continue;
                }
                if s.start < max_end {
                    br.violations.push(AccountingViolation {
                        actor: a as u32,
                        cycle: s.start,
                        detail: format!(
                            "span {} ({}) overlaps span {prev} on the same timeline",
                            s.id,
                            s.kind.tag()
                        ),
                    });
                }
                if e > max_end {
                    max_end = e;
                    prev = s.id;
                }
            }
        }
        let mut claimed = 0u64;
        for s in &leaves[a] {
            let st = s.start.min(total);
            let e = eff(s).clamp(st, total);
            let d = e - st;
            match s.kind {
                SpanKind::Commit => br.commit += d,
                SpanKind::Stall | SpanKind::Backoff => br.stall += d,
                _ => br.overhead += d,
            }
            claimed += d;
        }
        for s in &sections[a] {
            let st = s.start.min(total);
            let e = eff(s).clamp(st, total);
            let inner: u64 = leaves[a]
                .iter()
                .map(|l| window_overlap((st, e), (l.start.min(total), eff(l).clamp(l.start.min(total), total))))
                .sum();
            let net = (e - st).saturating_sub(inner);
            match s.outcome {
                SpanOutcome::Useful => {
                    br.useful += net;
                    claimed += net;
                }
                SpanOutcome::Squashed => {
                    br.squashed += net;
                    claimed += net;
                }
                // Unresolved attempts (run aborted mid-flight) fall into
                // the remainder.
                SpanOutcome::Pending => {}
            }
        }
        if claimed > total {
            br.violations.push(AccountingViolation {
                actor: a as u32,
                cycle: total,
                detail: format!("actor {a} claims {claimed} cycles of a {total}-cycle timeline"),
            });
        }
        br.other += total.saturating_sub(claimed);
    }
    br
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> TraceLog {
        TraceLog::new()
    }

    #[test]
    fn spans_get_sequential_ids_and_close() {
        let t = log();
        let tr = t.register_track("tm.");
        assert_eq!(tr, 0);
        assert_eq!(t.register_track("tm."), 0, "track registration dedupes");
        assert_eq!(t.register_track("tls."), 1);
        let a = t.begin(tr, 0, SpanKind::Section, 10, None, 7);
        let b = t.complete(tr, 0, SpanKind::Commit, 50, 80, Some(a), 7);
        t.end(a, 50);
        t.set_outcome(a, SpanOutcome::Useful);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, 0);
        assert_eq!(spans[1].id, b.raw());
        assert_eq!(spans[1].parent, Some(0));
        assert!(spans[0].ended && spans[1].ended);
        assert_eq!(spans[0].outcome, SpanOutcome::Useful);
        assert_eq!(spans[0].detail, 7);
    }

    #[test]
    fn links_record_cause_and_effects() {
        let t = log();
        let tr = t.register_track("tm.");
        let c = t.complete(tr, 0, SpanKind::Commit, 0, 10, None, 0);
        let s1 = t.complete(tr, 1, SpanKind::Squash, 10, 14, None, 0);
        let s2 = t.complete(tr, 2, SpanKind::BulkInvalidate, 10, 10, None, 3);
        t.link(c, s1);
        t.link(c, s2);
        let spans = t.spans();
        assert_eq!(spans[0].links, vec![s1.raw(), s2.raw()]);
        assert_eq!(spans[1].cause, Some(c.raw()));
        assert_eq!(spans[2].cause, Some(c.raw()));
    }

    #[test]
    fn full_log_drops_and_sentinel_is_inert() {
        let t = TraceLog::with_capacity(2);
        let tr = t.register_track("tm.");
        let a = t.begin(tr, 0, SpanKind::Section, 0, None, 0);
        let _b = t.begin(tr, 0, SpanKind::Commit, 5, None, 0);
        let c = t.begin(tr, 0, SpanKind::Squash, 9, None, 0);
        assert!(c.is_dropped());
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.len(), 2);
        // All sentinel operations are no-ops.
        t.end(c, 100);
        t.set_outcome(c, SpanOutcome::Squashed);
        t.link(a, c);
        t.link(c, a);
        assert!(t.spans()[0].links.is_empty());
    }

    #[test]
    fn chrome_export_shape_and_determinism() {
        let build = || {
            let t = log();
            let tr = t.register_track("tm.");
            let sec = t.begin(tr, 1, SpanKind::Section, 0, None, 4);
            t.end(sec, 90);
            t.set_outcome(sec, SpanOutcome::Squashed);
            let c = t.complete(tr, 0, SpanKind::Commit, 40, 90, None, 2);
            let sq = t.complete(tr, 1, SpanKind::Squash, 90, 95, None, 0);
            t.link(c, sq);
            t.to_chrome_json()
        };
        let json = build();
        assert_eq!(json, build(), "same construction exports byte-identically");
        assert!(json.starts_with("{\"traceEvents\": [\n"));
        assert!(json.ends_with("\n]}\n"));
        assert!(json.contains("\"ph\": \"M\""), "has process metadata");
        assert!(json.contains("\"name\": \"process_name\""));
        assert!(json.contains("\"ph\": \"X\""), "has complete events");
        assert!(json.contains("\"ph\": \"s\"") && json.contains("\"ph\": \"f\""), "has the flow pair");
        assert!(json.contains("\"bp\": \"e\""));
        assert!(json.contains("\"outcome\": \"squashed\""));
        assert!(json.contains("\"links\": [2]"));
        // Braces balance (the export has no string payloads containing braces).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn empty_export_is_valid() {
        assert_eq!(log().to_chrome_json(), "{\"traceEvents\": []}\n");
    }

    #[test]
    fn accounting_splits_categories_and_conserves() {
        let t = log();
        let tr = t.register_track("tm.");
        // Actor 0: section [10,100] useful, commit [100,150], squash
        // [150,160], backoff [160,170]; total 200.
        let sec = t.begin(tr, 0, SpanKind::Section, 10, None, 0);
        t.end(sec, 100);
        t.set_outcome(sec, SpanOutcome::Useful);
        t.complete(tr, 0, SpanKind::Commit, 100, 150, Some(sec), 0);
        t.complete(tr, 0, SpanKind::Squash, 150, 160, None, 0);
        t.complete(tr, 0, SpanKind::Backoff, 160, 170, None, 0);
        let br = cycle_accounting(&t.spans(), tr, &[200]);
        assert_eq!(br.useful, 90);
        assert_eq!(br.commit, 50);
        assert_eq!(br.overhead, 10);
        assert_eq!(br.stall, 10);
        assert_eq!(br.squashed, 0);
        assert_eq!(br.other, 40, "10 lead-in + 30 tail");
        assert_eq!(br.total, 200);
        assert!(br.violations.is_empty());
        assert!(br.conserves());
    }

    #[test]
    fn leaf_inside_section_is_subtracted_from_its_window() {
        let t = log();
        let tr = t.register_track("tls.");
        let sec = t.begin(tr, 0, SpanKind::Section, 0, None, 0);
        t.complete(tr, 0, SpanKind::CtxSwitch, 40, 50, None, 0);
        t.end(sec, 100);
        t.set_outcome(sec, SpanOutcome::Squashed);
        let br = cycle_accounting(&t.spans(), tr, &[100]);
        assert_eq!(br.squashed, 90);
        assert_eq!(br.overhead, 10);
        assert_eq!(br.other, 0);
        assert!(br.conserves());
        assert!(br.violations.is_empty());
    }

    #[test]
    fn pending_sections_fall_into_other() {
        let t = log();
        let tr = t.register_track("tm.");
        t.begin(tr, 0, SpanKind::Section, 20, None, 0); // never ended
        let br = cycle_accounting(&t.spans(), tr, &[100]);
        assert_eq!(br.useful + br.squashed, 0);
        assert_eq!(br.other, 100);
        assert!(br.conserves());
        assert!(br.violations.is_empty());
    }

    #[test]
    fn bus_lane_commits_accumulate_separately() {
        let t = log();
        let tr = t.register_track("tls.");
        t.complete(tr, 2, SpanKind::Commit, 10, 60, None, 0); // actor 2 == bus for 2 procs
        let br = cycle_accounting(&t.spans(), tr, &[100, 100]);
        assert_eq!(br.commit, 0);
        assert_eq!(br.commit_bus, 50);
        assert_eq!(br.other, 200);
        assert!(br.conserves());
        assert!(br.violations.is_empty());
    }

    #[test]
    fn audit_flags_overlap_and_overrun() {
        let t = log();
        let tr = t.register_track("tm.");
        t.complete(tr, 0, SpanKind::Squash, 0, 50, None, 0);
        t.complete(tr, 0, SpanKind::Commit, 40, 60, None, 0); // overlaps
        t.complete(tr, 1, SpanKind::Commit, 10, 150, None, 0); // past total
        let br = cycle_accounting(&t.spans(), tr, &[100, 100]);
        assert_eq!(br.violations.len(), 2);
        assert!(br.violations[0].detail.contains("overlaps"));
        assert!(br.violations[1].detail.contains("past actor total"));
    }

    #[test]
    fn audit_flags_backwards_and_foreign_bus_spans() {
        let t = log();
        let tr = t.register_track("tm.");
        let s = t.begin(tr, 0, SpanKind::Commit, 50, None, 0);
        t.end(s, 10); // backwards
        t.complete(tr, 5, SpanKind::Squash, 0, 10, None, 0); // non-commit on bus lane
        let br = cycle_accounting(&t.spans(), tr, &[100]);
        assert!(br.violations.iter().any(|v| v.detail.contains("backwards")));
        assert!(br.violations.iter().any(|v| v.detail.contains("bus lane")));
    }

    #[test]
    fn other_track_spans_are_ignored() {
        let t = log();
        let tm = t.register_track("tm.");
        let tls = t.register_track("tls.");
        t.complete(tm, 0, SpanKind::Commit, 0, 50, None, 0);
        t.complete(tls, 0, SpanKind::Commit, 0, 30, None, 0);
        let br = cycle_accounting(&t.spans(), tls, &[100]);
        assert_eq!(br.commit, 30);
        assert!(br.conserves());
    }
}
