//! `bulk-obs` — the workspace's observability layer: a metrics registry,
//! a structured event log, and false-positive attribution for bulk
//! disambiguation.
//!
//! The paper's evaluation (§7 of *Bulk Disambiguation of Speculative
//! Threads in Multiprocessors*, Ceze et al., ISCA 2006) is an exercise in
//! measurement: false-positive squash rates as signatures shrink
//! (Figure 9), bandwidth of compressed write signatures (Table 6), and
//! bulk-invalidation overshoot (Table 7). This crate gives the simulated
//! machines the corresponding runtime instruments:
//!
//! - [`metrics`] — [`Counter`]/[`Gauge`]/[`Histogram`] handles in a named
//!   [`Registry`], recorded lock-free on the hot path and serialized as
//!   deterministic JSON.
//! - [`events`] — typed protocol events ([`EventKind`]) with logical
//!   timestamps in a bounded [`EventLog`], exportable as JSONL
//!   (`--events-out` in the CLI).
//! - [`attribution`] — every disambiguation verdict
//!   (`W_C ∩ R_R ∨ W_C ∩ W_R`, paper §2.3) cross-checked against the
//!   exact per-address oracle and classified as a [`Verdict`]; squashes
//!   split into *true-conflict* vs. *aliasing-induced*.
//! - [`trace`] — span-based causal tracing ([`TraceLog`]): protocol
//!   phases as timed [`Span`]s with parent/child structure and causal
//!   links (a commit broadcast records every squash it triggered),
//!   exported as Chrome trace-event JSON (`--trace-out`), plus the
//!   [`cycle_accounting`] reducer folding each timeline into the paper's
//!   Fig. 13 execution-time categories under a conservation audit.
//! - [`hooks`] — pre-registered handle bundles ([`RuntimeObs`],
//!   [`ExpansionObs`], [`OverflowObs`]) so instrumented layers never pay
//!   name lookups per record.
//! - [`prometheus`] — a hand-rolled text-exposition encoder (plus strict
//!   parser) that renders one or more label-scoped registries as a
//!   Prometheus `/metrics` document, the `bulkd` daemon's scrape surface.
//!
//! Everything funnels into one [`Obs`] bundle that the TM/TLS machines,
//! the CLI and the bench runners share. `bulk-obs` sits at the bottom of
//! the dependency graph (no dependencies, not even on `bulk-base`), so
//! any crate in the workspace can be instrumented.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod events;
pub mod hooks;
pub mod metrics;
pub mod prometheus;
pub mod trace;

pub use attribution::{Verdict, VerdictCounters};
pub use events::{Event, EventKind, EventLog, SquashCause, DEFAULT_EVENT_CAPACITY};
pub use hooks::{CycleObs, ExpansionObs, OverflowObs, RuntimeObs};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use prometheus::{encode as prometheus_encode, Scope as PromScope};
pub use trace::{
    cycle_accounting, AccountingViolation, CycleBreakdown, Span, SpanId, SpanKind, SpanOutcome,
    TraceLog, DEFAULT_TRACE_CAPACITY,
};

/// The shared observability bundle: one metrics [`Registry`], one
/// [`EventLog`] and one [`TraceLog`]. Typically wrapped in an `Arc` and
/// handed to every layer of a run.
#[derive(Debug, Default)]
pub struct Obs {
    registry: Registry,
    events: EventLog,
    trace: TraceLog,
}

impl Obs {
    /// Creates a bundle with an empty registry and default-capacity
    /// event and trace rings.
    pub fn new() -> Self {
        Obs::default()
    }

    /// Creates a bundle whose event ring keeps at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Obs {
            registry: Registry::new(),
            events: EventLog::with_capacity(capacity),
            trace: TraceLog::new(),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The span trace.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Copies the event ring's streaming stats into the registry as
    /// gauges — `events.dropped` (events lost to ring wraparound) and
    /// `events.buffer_hwm` (peak buffer residency) — so backpressure is
    /// visible on any scrape/report surface. Idempotent: gauges are set,
    /// not accumulated, so callers can publish before every snapshot.
    pub fn publish_stream_stats(&self) {
        self.registry.gauge("events.dropped").set(self.events.dropped());
        self.registry
            .gauge("events.buffer_hwm")
            .set(self.events.high_water() as u64);
    }
}

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes
/// and control characters; metric names are ASCII in practice, so this is
/// cold-path only).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain.name"), "plain.name");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn obs_bundle_shares_registry_and_events() {
        let obs = Obs::new();
        obs.registry().counter("c").inc();
        obs.events().record(0, 1, EventKind::Escalation);
        assert_eq!(obs.registry().counter_value("c"), 1);
        assert_eq!(obs.events().len(), 1);
    }

    #[test]
    fn publish_stream_stats_sets_gauges_idempotently() {
        let obs = Obs::with_event_capacity(2);
        for i in 0..5 {
            obs.events().record(0, i, EventKind::CtxSwitch);
        }
        obs.publish_stream_stats();
        obs.publish_stream_stats(); // set, not accumulate
        let gauges = obs.registry().gauges();
        assert!(gauges.contains(&("events.dropped".to_string(), 3)));
        assert!(gauges.contains(&("events.buffer_hwm".to_string(), 2)));
    }
}
