//! The structured event log: typed protocol events with logical
//! timestamps, ring-buffered and exportable as JSONL.
//!
//! Every recorded [`Event`] carries a `seq` (a logical timestamp: the
//! global record order, gap-free while the ring has not wrapped), the
//! machine `cycle` at which the protocol step happened, and the `actor`
//! (thread index in the TM machine, task index in the TLS machine). The
//! ring keeps the most recent events and counts what it dropped, so a
//! long run degrades to a bounded tail instead of unbounded memory.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a speculative thread/task was squashed, as attributed by the exact
/// per-address oracle (see [`crate::Verdict`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashCause {
    /// The committed write set really overlapped the victim's exact
    /// read/write sets — any scheme must squash here.
    TrueConflict,
    /// The signatures intersected but the exact sets were disjoint: the
    /// squash is an artifact of signature aliasing (paper §7.5's false
    /// positives).
    Aliasing,
}

impl SquashCause {
    /// Attribution from the oracle's view of the conflict.
    pub fn from_oracle(truly_conflicting: bool) -> Self {
        if truly_conflicting {
            SquashCause::TrueConflict
        } else {
            SquashCause::Aliasing
        }
    }

    /// Stable lowercase name used in JSONL and metric suffixes.
    pub fn as_str(self) -> &'static str {
        match self {
            SquashCause::TrueConflict => "true_conflict",
            SquashCause::Aliasing => "aliasing",
        }
    }
}

/// One typed protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A transaction/task committed and broadcast its write set.
    CommitBroadcast {
        /// Bytes on the bus (compressed signature, or address list for
        /// conventional schemes).
        payload_bytes: u64,
        /// Exact committed write-set size (lines for TM, words for TLS).
        writes: u64,
    },
    /// A speculative thread/task was squashed.
    Squash {
        /// Oracle attribution: real conflict or signature aliasing.
        cause: SquashCause,
        /// Exact dependence-set size (`|W_C ∩ (R_R ∪ W_R)|`); 0 for an
        /// aliasing-induced squash.
        dep: u64,
    },
    /// A receiver bulk-invalidated cache lines selected by the committed
    /// write signature (paper §4.3).
    BulkInvalidate {
        /// Lines the signature expansion invalidated.
        lines: u64,
        /// How many of those the committer exactly wrote.
        exact: u64,
        /// `lines - exact`: invalidations caused purely by aliasing
        /// (Table 7 "False Inv/Com" numerator).
        overshoot: u64,
    },
    /// A speculative dirty line was evicted into the memory overflow area
    /// (paper §6.2.2).
    Overflow {
        /// Lines resident in the overflow area after the spill.
        resident: u64,
    },
    /// A forced context switch spilled and reloaded the running version's
    /// signatures (paper §6.2.2; chaos runs only).
    CtxSwitch,
    /// A repeatedly-squashed transaction/task escalated to its
    /// non-speculative fallback (graceful degradation).
    Escalation,
    /// The liveness engine's backoff arbitration stalled a squashed
    /// thread before its retry.
    Backoff {
        /// Cycles the thread was told to wait.
        cycles: u64,
    },
    /// The commit arbiter crashed mid-broadcast and a new epoch was
    /// elected; the in-flight commit message is replayed idempotently.
    ArbiterFailover {
        /// Epoch after re-election.
        epoch: u64,
    },
    /// The forward-progress watchdog tripped; the run aborts with a
    /// `LivenessViolation`.
    WatchdogTrip {
        /// Kebab-case violation kind (`livelock`, `starvation`,
        /// `global-stall`).
        kind: &'static str,
    },
}

impl EventKind {
    /// Stable lowercase tag used as the JSONL `"event"` field.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::CommitBroadcast { .. } => "commit_broadcast",
            EventKind::Squash { .. } => "squash",
            EventKind::BulkInvalidate { .. } => "bulk_invalidate",
            EventKind::Overflow { .. } => "overflow",
            EventKind::CtxSwitch => "ctx_switch",
            EventKind::Escalation => "escalation",
            EventKind::Backoff { .. } => "backoff",
            EventKind::ArbiterFailover { .. } => "arbiter_failover",
            EventKind::WatchdogTrip { .. } => "watchdog_trip",
        }
    }
}

/// A recorded event: a typed payload plus its logical timestamp and
/// machine coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Logical timestamp: global record order (0, 1, 2, …).
    pub seq: u64,
    /// Machine cycle of the protocol step.
    pub cycle: u64,
    /// Thread index (TM) or task index (TLS) the event concerns.
    pub actor: u32,
    /// The typed payload.
    pub kind: EventKind,
}

impl Event {
    /// The event as one JSONL line (no trailing newline). Field order is
    /// fixed, so identical runs serialize byte-identically.
    pub fn to_json_line(&self) -> String {
        let head = format!(
            "{{\"seq\": {}, \"cycle\": {}, \"actor\": {}, \"event\": \"{}\"",
            self.seq,
            self.cycle,
            self.actor,
            self.kind.tag()
        );
        let tail = match &self.kind {
            EventKind::CommitBroadcast { payload_bytes, writes } => {
                format!(", \"payload_bytes\": {payload_bytes}, \"writes\": {writes}}}")
            }
            EventKind::Squash { cause, dep } => {
                format!(", \"cause\": \"{}\", \"dep\": {dep}}}", cause.as_str())
            }
            EventKind::BulkInvalidate { lines, exact, overshoot } => {
                format!(", \"lines\": {lines}, \"exact\": {exact}, \"overshoot\": {overshoot}}}")
            }
            EventKind::Overflow { resident } => format!(", \"resident\": {resident}}}"),
            EventKind::CtxSwitch | EventKind::Escalation => "}".to_string(),
            EventKind::Backoff { cycles } => format!(", \"cycles\": {cycles}}}"),
            EventKind::ArbiterFailover { epoch } => format!(", \"epoch\": {epoch}}}"),
            EventKind::WatchdogTrip { kind } => format!(", \"kind\": \"{kind}\"}}"),
        };
        head + &tail
    }
}

#[derive(Debug, Default)]
struct Ring {
    buf: VecDeque<Event>,
    dropped: u64,
    /// Most events ever resident at once — the buffer's high-water mark,
    /// exposed as a gauge so streaming backpressure is visible even when
    /// nothing was dropped.
    hwm: usize,
}

/// Default ring capacity: enough for every event of the repo's stock
/// workloads, small enough to be harmless if a run is enormous.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// A bounded, shareable log of [`Event`]s.
#[derive(Debug)]
pub struct EventLog {
    seq: AtomicU64,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// Creates a log with the default capacity.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Creates a log holding at most `capacity` events; older events are
    /// dropped (and counted) once it is full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        EventLog { seq: AtomicU64::new(0), capacity, ring: Mutex::new(Ring::default()) }
    }

    /// Records one event, assigning it the next logical timestamp.
    pub fn record(&self, actor: u32, cycle: u64, kind: EventKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("event ring poisoned");
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(Event { seq, cycle, actor, kind });
        ring.hwm = ring.hwm.max(ring.buf.len());
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("event ring poisoned").buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("event ring poisoned").dropped
    }

    /// The most events ever resident at once (buffer high-water mark).
    pub fn high_water(&self) -> usize {
        self.ring.lock().expect("event ring poisoned").hwm
    }

    /// Retained events with `seq >= from_seq`, oldest first — the
    /// incremental drain used by streaming consumers: remember the last
    /// seq you saw and ask for `last + 1` next time. Events that wrapped
    /// out of the ring before being read show up only in
    /// [`EventLog::dropped`].
    pub fn events_after(&self, from_seq: u64) -> Vec<Event> {
        let ring = self.ring.lock().expect("event ring poisoned");
        // The ring is seq-ordered; skip the prefix below from_seq.
        let skip = ring.buf.partition_point(|e| e.seq < from_seq);
        ring.buf.iter().skip(skip).cloned().collect()
    }

    /// A snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("event ring poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// The retained events as JSONL: one event per line, oldest first,
    /// followed by one trailer record
    /// (`{"trailer": true, "retained": N, "dropped": M}`) so ring
    /// truncation is never silent — a reader that sees `dropped > 0`
    /// knows the head of the run is missing. Deterministic for identical
    /// runs.
    pub fn to_jsonl(&self) -> String {
        let ring = self.ring.lock().expect("event ring poisoned");
        let mut out = String::new();
        for e in &ring.buf {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"trailer\": true, \"retained\": {}, \"dropped\": {}}}\n",
            ring.buf.len(),
            ring.dropped
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_with_monotonic_seq() {
        let log = EventLog::new();
        log.record(0, 10, EventKind::CtxSwitch);
        log.record(1, 20, EventKind::Escalation);
        let ev = log.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].seq, 0);
        assert_eq!(ev[1].seq, 1);
        assert_eq!(ev[1].actor, 1);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let log = EventLog::with_capacity(2);
        for i in 0..5 {
            log.record(i, u64::from(i), EventKind::CtxSwitch);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let ev = log.events();
        assert_eq!(ev[0].seq, 3, "oldest retained is the third-from-last record");
        assert_eq!(ev[1].seq, 4);
    }

    #[test]
    fn jsonl_lines_are_objects_with_fixed_fields() {
        let log = EventLog::new();
        log.record(
            2,
            100,
            EventKind::Squash { cause: SquashCause::Aliasing, dep: 0 },
        );
        log.record(
            0,
            120,
            EventKind::BulkInvalidate { lines: 5, exact: 4, overshoot: 1 },
        );
        log.record(1, 130, EventKind::CommitBroadcast { payload_bytes: 320, writes: 12 });
        log.record(1, 140, EventKind::Overflow { resident: 3 });
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5, "4 events + 1 trailer");
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "not an object: {l}");
        }
        assert_eq!(lines[4], "{\"trailer\": true, \"retained\": 4, \"dropped\": 0}");
        assert_eq!(
            lines[0],
            "{\"seq\": 0, \"cycle\": 100, \"actor\": 2, \"event\": \"squash\", \
             \"cause\": \"aliasing\", \"dep\": 0}"
        );
        assert!(lines[1].contains("\"overshoot\": 1"));
        assert!(lines[2].contains("\"payload_bytes\": 320"));
        assert!(lines[3].contains("\"resident\": 3"));
    }

    #[test]
    fn liveness_events_serialize_with_fixed_fields() {
        let log = EventLog::new();
        log.record(0, 50, EventKind::Backoff { cycles: 96 });
        log.record(2, 60, EventKind::ArbiterFailover { epoch: 3 });
        log.record(1, 70, EventKind::WatchdogTrip { kind: "livelock" });
        let lines: Vec<String> = log.to_jsonl().lines().map(String::from).collect();
        assert_eq!(
            lines[0],
            "{\"seq\": 0, \"cycle\": 50, \"actor\": 0, \"event\": \"backoff\", \"cycles\": 96}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\": 1, \"cycle\": 60, \"actor\": 2, \"event\": \"arbiter_failover\", \
             \"epoch\": 3}"
        );
        assert_eq!(
            lines[2],
            "{\"seq\": 2, \"cycle\": 70, \"actor\": 1, \"event\": \"watchdog_trip\", \
             \"kind\": \"livelock\"}"
        );
    }

    #[test]
    fn wraparound_keeps_seq_monotonic_and_trailer_reports_drops() {
        let log = EventLog::with_capacity(3);
        for i in 0..10u32 {
            log.record(i, u64::from(i) * 10, EventKind::Escalation);
        }
        // Retained events are the newest three, seq still strictly
        // increasing and gap-free across the wrap.
        let ev = log.events();
        assert_eq!(ev.len(), 3);
        let seqs: Vec<u64> = ev.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(log.dropped(), 7);
        let jsonl = log.to_jsonl();
        let last = jsonl.lines().last().unwrap();
        assert_eq!(last, "{\"trailer\": true, \"retained\": 3, \"dropped\": 7}");
        // Recording after the wrap keeps counting from the global seq.
        log.record(0, 100, EventKind::CtxSwitch);
        assert_eq!(log.events().last().unwrap().seq, 10);
        assert_eq!(log.dropped(), 8);
    }

    #[test]
    fn high_water_tracks_peak_residency() {
        let log = EventLog::with_capacity(3);
        assert_eq!(log.high_water(), 0);
        log.record(0, 0, EventKind::CtxSwitch);
        log.record(0, 1, EventKind::CtxSwitch);
        assert_eq!(log.high_water(), 2);
        for i in 0..5 {
            log.record(0, 2 + i, EventKind::CtxSwitch);
        }
        // Capacity bounds the high-water mark; drops don't lower it.
        assert_eq!(log.len(), 3);
        assert_eq!(log.high_water(), 3);
    }

    #[test]
    fn events_after_drains_incrementally() {
        let log = EventLog::new();
        for i in 0..6u32 {
            log.record(i, u64::from(i), EventKind::Escalation);
        }
        let first: Vec<u64> = log.events_after(0).iter().map(|e| e.seq).collect();
        assert_eq!(first, vec![0, 1, 2, 3, 4, 5]);
        let tail: Vec<u64> = log.events_after(4).iter().map(|e| e.seq).collect();
        assert_eq!(tail, vec![4, 5]);
        assert!(log.events_after(6).is_empty());
    }

    #[test]
    fn empty_log_still_emits_a_trailer() {
        let log = EventLog::new();
        assert_eq!(log.to_jsonl(), "{\"trailer\": true, \"retained\": 0, \"dropped\": 0}\n");
    }

    #[test]
    fn cause_names_are_stable() {
        assert_eq!(SquashCause::from_oracle(true).as_str(), "true_conflict");
        assert_eq!(SquashCause::from_oracle(false).as_str(), "aliasing");
    }
}
