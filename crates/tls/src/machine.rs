//! The TLS machine: ordered speculative tasks on a multiprocessor.
//!
//! Tasks of a [`TlsWorkload`] execute in speculative order on the paper's
//! 4-processor machine (Table 5): a task spawns its successor at its
//! `Spawn` op, tasks commit strictly in order, and a dependence violation
//! squashes the offending task *and all more-speculative tasks* (the
//! cascade). Each processor's BDM holds two version slots, so a processor
//! whose task finished but cannot yet commit starts the next task — which
//! is what makes the Set Restriction's write–write set conflicts (Table 6)
//! reachable.
//!
//! As in the TM runtime, exact word-level sets are tracked as an oracle to
//! classify aliasing artifacts; Bulk's decisions use signatures only.

use std::collections::HashSet;
use std::sync::Arc;

use bulk_chaos::{Auditor, FaultPlan, InvariantKind, MachineError};
use bulk_core::{check_speculative_store, flows, Bdm, CommitEvent, CommitMsg, StoreCheck, VersionId};
use bulk_live::{LivenessConfig, LivenessEngine};
use bulk_obs::{Obs, RuntimeObs, SpanId, SpanKind, SpanOutcome};
use bulk_mem::{Addr, Cache, LineAddr, MsgClass, WordAddr};
use bulk_sig::{Signature, SignatureArena, SignatureConfig};
use bulk_sim::{Bus, CoreTimer, SimConfig};
use bulk_trace::{TlsOp, TlsWorkload};

use crate::{TlsScheme, TlsStats};

/// BDM version slots per processor (running + awaiting-commit).
const VERSIONS_PER_PROC: usize = 2;

/// Restarts of one task before it escalates to head-serialized execution.
const DEFAULT_ESCALATION_THRESHOLD: u32 = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    NotStarted,
    Ready,
    Running,
    WaitingCommit,
    Committed,
}

struct Task {
    ops: Vec<TlsOp>,
    pc: usize,
    status: Status,
    proc: Option<usize>,
    version: Option<VersionId>,
    r_words: HashSet<WordAddr>,
    w_words: HashSet<WordAddr>,
    /// Exact snapshot of `w_words` at the spawn point (Partial Overlap).
    w_prespawn: HashSet<WordAddr>,
    ready_at: Option<u64>,
    finish_time: u64,
    /// Spawn-time invalidation payload for this task's processor (§6.3):
    /// the parent's write signature / exact lines at spawn.
    spawn_inval_sig: Option<Signature>,
    spawn_inval_lines: Vec<LineAddr>,
    restarts: u32,
    /// Graceful degradation: after enough restarts the task only (re)starts
    /// once it is the oldest uncommitted task — at the head it is
    /// effectively non-speculative and can no longer be squashed.
    escalated: bool,
    /// Trace span of the current execution attempt ([`SpanId::DROPPED`]
    /// when tracing is off or the task is not in flight).
    section_span: SpanId,
}

impl Task {
    fn in_flight(&self) -> bool {
        matches!(self.status, Status::Running | Status::WaitingCommit)
    }

    fn reads_or_writes(&self, w: WordAddr) -> bool {
        self.r_words.contains(&w) || self.w_words.contains(&w)
    }
}

struct Proc {
    timer: CoreTimer,
    cache: Cache,
    bdm: Bdm,
    running: Option<usize>,
}

/// The simulated TLS multiprocessor. Construct with [`TlsMachine::new`],
/// run with [`TlsMachine::run`] (or use [`run_tls`]).
pub struct TlsMachine {
    cfg: SimConfig,
    scheme: TlsScheme,
    sig_config: Arc<SignatureConfig>,
    /// Recycling pool for per-broadcast signature buffers (commit copies
    /// and wire-delivered signatures) so the commit path stays off the
    /// allocator.
    sig_arena: SignatureArena,
    procs: Vec<Proc>,
    tasks: Vec<Task>,
    oldest_uncommitted: usize,
    last_commit_finish: u64,
    bus: Bus,
    stats: TlsStats,
    /// Restarts before a task escalates to head-serialized execution
    /// (`None` disables the fallback).
    escalation: Option<u32>,
    /// Optional deterministic fault injector.
    chaos: Option<FaultPlan>,
    /// Whether the invariant auditor is armed.
    audit: bool,
    auditor: Auditor,
    obs: Option<RuntimeObs>,
    /// Trace span of the commit broadcast currently being delivered;
    /// squash and invalidation spans it triggers link back to it.
    /// [`SpanId::DROPPED`] outside the delivery/disambiguation window.
    commit_cause: SpanId,
    /// Optional liveness engine, armed via [`TlsMachine::enable_liveness`].
    /// `None` leaves every existing run bit-identical: no fault-stream
    /// draws, no timing changes.
    live: Option<LivenessEngine>,
}

/// Runs `workload` under `scheme` and returns the collected statistics.
pub fn run_tls(workload: &TlsWorkload, scheme: TlsScheme, cfg: &SimConfig) -> TlsStats {
    TlsMachine::new(workload, scheme, cfg).run()
}

/// [`run_tls`] with an observability bundle attached: metrics land in
/// `obs`'s registry under the `tls.` prefix and protocol events in its
/// event log (see [`TlsMachine::attach_obs`]).
pub fn run_tls_observed(
    workload: &TlsWorkload,
    scheme: TlsScheme,
    cfg: &SimConfig,
    obs: std::sync::Arc<bulk_obs::Obs>,
) -> TlsStats {
    let mut m = TlsMachine::new(workload, scheme, cfg);
    m.attach_obs(obs);
    m.run()
}

/// Executes the workload sequentially (the Fig. 10 baseline): all tasks in
/// order on one processor, no speculation overheads. Returns total cycles.
pub fn run_tls_sequential(workload: &TlsWorkload, cfg: &SimConfig) -> u64 {
    let mut timer = CoreTimer::new();
    let mut cache = Cache::new(cfg.geom);
    let mut bw = bulk_mem::BandwidthStats::new();
    for task in &workload.tasks {
        for op in &task.ops {
            match *op {
                TlsOp::Compute(n) => timer.compute(u64::from(n), cfg),
                TlsOp::Read(a) => {
                    timer.load(&mut cache, a.line(cfg.geom.line_bytes()), false, cfg, &mut bw);
                }
                TlsOp::Write(a) => {
                    timer.store(&mut cache, a.line(cfg.geom.line_bytes()), false, cfg, &mut bw);
                }
                TlsOp::Spawn => {}
            }
        }
    }
    timer.now()
}

impl TlsMachine {
    /// Builds a machine with the paper's S14 word-granularity signatures.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no tasks or a task trace is malformed;
    /// use [`TlsMachine::try_new`] for a typed error instead.
    pub fn new(workload: &TlsWorkload, scheme: TlsScheme, cfg: &SimConfig) -> Self {
        TlsMachine::try_new(workload, scheme, cfg)
            .unwrap_or_else(|e| panic!("invalid TLS workload: {e}"))
    }

    /// Fallible construction: returns a typed [`MachineError`] when the
    /// workload is empty or a task trace fails validation.
    pub fn try_new(
        workload: &TlsWorkload,
        scheme: TlsScheme,
        cfg: &SimConfig,
    ) -> Result<Self, MachineError> {
        TlsMachine::try_with_signature(workload, scheme, cfg, SignatureConfig::s14_tls())
    }

    /// Builds a machine with an explicit signature configuration.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no tasks, a task trace is malformed, or
    /// the signature is not word-granularity.
    pub fn with_signature(
        workload: &TlsWorkload,
        scheme: TlsScheme,
        cfg: &SimConfig,
        sig: SignatureConfig,
    ) -> Self {
        TlsMachine::try_with_signature(workload, scheme, cfg, sig)
            .unwrap_or_else(|e| panic!("invalid TLS workload: {e}"))
    }

    /// Fallible construction with an explicit signature configuration.
    pub fn try_with_signature(
        workload: &TlsWorkload,
        scheme: TlsScheme,
        cfg: &SimConfig,
        sig: SignatureConfig,
    ) -> Result<Self, MachineError> {
        if workload.tasks.is_empty() {
            return Err(MachineError::EmptyWorkload { machine: "tls" });
        }
        assert_eq!(
            sig.granularity(),
            bulk_sig::Granularity::Word,
            "TLS disambiguation is word-granularity"
        );
        let sig_config = sig.into_shared();
        let procs = (0..cfg.num_procs)
            .map(|_| Proc {
                timer: CoreTimer::new(),
                cache: Cache::new(cfg.geom),
                bdm: Bdm::new_shared(sig_config.clone(), cfg.geom, VERSIONS_PER_PROC),
                running: None,
            })
            .collect();
        let mut tasks = Vec::with_capacity(workload.tasks.len());
        for (i, t) in workload.tasks.iter().enumerate() {
            t.validate().map_err(|source| MachineError::Trace { thread: i, source })?;
            tasks.push(Task {
                ops: t.ops.clone(),
                pc: 0,
                status: Status::NotStarted,
                proc: None,
                version: None,
                r_words: HashSet::new(),
                w_words: HashSet::new(),
                w_prespawn: HashSet::new(),
                ready_at: None,
                finish_time: 0,
                spawn_inval_sig: None,
                spawn_inval_lines: Vec::new(),
                restarts: 0,
                escalated: false,
                section_span: SpanId::DROPPED,
            });
        }
        let mut m = TlsMachine {
            cfg: cfg.clone(),
            scheme,
            sig_arena: SignatureArena::new(sig_config.clone()),
            sig_config,
            procs,
            tasks,
            oldest_uncommitted: 0,
            last_commit_finish: 0,
            bus: Bus::new(),
            stats: TlsStats::default(),
            escalation: Some(DEFAULT_ESCALATION_THRESHOLD),
            chaos: None,
            audit: false,
            auditor: Auditor::off(),
            obs: None,
            commit_cause: SpanId::DROPPED,
            live: None,
        };
        m.tasks[0].ready_at = Some(0);
        Ok(m)
    }

    /// Overrides the per-task escalation threshold (`None` disables the
    /// head-serialized fallback entirely).
    pub fn set_escalation_threshold(&mut self, threshold: Option<u32>) {
        self.escalation = threshold;
    }

    /// Attaches an observability bundle: all protocol steps are mirrored
    /// into metrics under the `tls.` prefix and into the shared event log,
    /// and every squash is attributed against the exact oracle.
    pub fn attach_obs(&mut self, obs: std::sync::Arc<Obs>) {
        self.obs = Some(RuntimeObs::attach(obs, "tls."));
    }

    /// Arms the chaos fault injector for this run. The run then becomes a
    /// pure function of (workload, scheme, config, `plan.seed()`).
    pub fn set_chaos(&mut self, plan: FaultPlan) {
        self.chaos = Some(plan);
        if self.audit {
            self.rebuild_auditor();
        }
    }

    /// Arms the liveness engine: squash-triggered backoff arbitration, the
    /// forward-progress watchdog, and the failable commit arbiter
    /// (consulted by an armed chaos plan's `arbiter_crash` fault). Call
    /// *after* [`TlsMachine::set_chaos`] so the backoff jitter inherits the
    /// chaos seed; with `cfg.seed == 0` and chaos armed, the chaos seed is
    /// used.
    pub fn enable_liveness(&mut self, mut cfg: LivenessConfig) {
        let chaos_seed = self.chaos.as_ref().map(|p| p.seed());
        if cfg.seed == 0 {
            cfg.seed = chaos_seed.unwrap_or(0);
        }
        self.live = Some(LivenessEngine::new(
            self.scheme.to_string(),
            self.tasks.len(),
            cfg,
            chaos_seed,
        ));
    }

    /// Enables the runtime invariant auditor; violations are collected in
    /// [`TlsStats::violations`] instead of panicking.
    pub fn enable_audit(&mut self) {
        self.audit = true;
        self.rebuild_auditor();
    }

    fn rebuild_auditor(&mut self) {
        let seed = self.chaos.as_ref().map(|p| p.seed());
        self.auditor = Auditor::new(self.scheme.to_string(), self.procs.len(), seed);
    }

    /// Runs the machine to completion and returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics on a typed machine error (see [`TlsMachine::try_run`]).
    pub fn run(self) -> TlsStats {
        self.try_run().unwrap_or_else(|e| panic!("TLS run failed: {e}"))
    }

    /// Runs the machine to completion, surfacing machine-level failures
    /// (lost progress, malformed commit payloads) as typed errors rather
    /// than panics.
    pub fn try_run(mut self) -> Result<TlsStats, MachineError> {
        let op_total: usize = self.tasks.iter().map(|t| t.ops.len() + 1).sum();
        let budget = (op_total as u64 + 1000) * 200;
        let mut steps = 0u64;
        while self.oldest_uncommitted < self.tasks.len() {
            steps += 1;
            if steps >= budget {
                return Err(MachineError::NoProgress {
                    steps,
                    context: "TLS scheduling budget exhausted",
                });
            }
            if self.live.as_ref().is_some_and(|l| l.tripped()) {
                // The watchdog tripped: the run cannot make progress, so it
                // aborts with a diagnosis instead of burning the budget.
                break;
            }
            self.try_commits()?;
            if self.oldest_uncommitted >= self.tasks.len() {
                break;
            }
            self.assign_tasks();
            let Some(p) = self.pick_proc() else {
                // Nothing runnable: the oldest task must be committable.
                if self.tasks[self.oldest_uncommitted].status != Status::WaitingCommit {
                    return Err(MachineError::NoProgress {
                        steps,
                        context: "no runnable processor and nothing to commit",
                    });
                }
                continue;
            };
            self.step(p);
            if let Some(live) = &mut self.live {
                live.on_tick(self.procs[p].timer.now());
            }
        }
        self.stats.cycles = self
            .procs
            .iter()
            .map(|p| p.timer.now())
            .max()
            .unwrap_or(0)
            .max(self.last_commit_finish);
        if let Some(plan) = &mut self.chaos {
            self.stats.chaos = plan.take_stats();
        }
        if let Some(obs) = &self.obs {
            // Fold the trace into Fig. 13 cycle categories per processor;
            // the bus lane (actor == num_procs) carries commit broadcasts
            // and is accounted separately from the per-processor timelines.
            let totals: Vec<u64> = self.procs.iter().map(|p| p.timer.now()).collect();
            let breakdown = obs.finish_cycle_accounting(&totals);
            if self.auditor.enabled() {
                for v in &breakdown.violations {
                    self.auditor.record(
                        InvariantKind::CycleConservation,
                        if v.actor == u32::MAX { 0 } else { v.actor as usize },
                        v.cycle,
                        v.detail.clone(),
                    );
                }
            }
        }
        self.stats.audit_checks = self.auditor.checks();
        self.stats.violations = self.auditor.take_violations();
        if let Some(live) = &mut self.live {
            self.stats.liveness = live.stats();
            self.stats.liveness_violations = live.take_violations();
            if let Some(obs) = &self.obs {
                for v in &self.stats.liveness_violations {
                    obs.on_watchdog_trip(
                        v.thread.unwrap_or(0) as u32,
                        v.cycle,
                        v.kind.as_str(),
                    );
                }
            }
        }
        Ok(self.stats)
    }

    /// Token-protocol invariant check: under audit a breach becomes a
    /// recorded [`InvariantKind::TokenProtocol`] violation; without the
    /// auditor it remains a debug assertion, as before.
    fn check_token_protocol(&mut self, ok: bool, proc: usize, cycle: u64, detail: &str) {
        if ok {
            return;
        }
        if self.auditor.enabled() {
            self.auditor.record(InvariantKind::TokenProtocol, proc, cycle, detail.to_string());
        } else {
            debug_assert!(false, "{detail}");
        }
    }

    fn pick_proc(&self) -> Option<usize> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.running.is_some())
            .min_by_key(|(i, p)| (p.timer.now(), *i))
            .map(|(i, _)| i)
    }

    fn tasks_on_proc(&self, p: usize) -> usize {
        self.tasks
            .iter()
            .filter(|t| {
                t.proc == Some(p)
                    && matches!(t.status, Status::Ready | Status::Running | Status::WaitingCommit)
            })
            .count()
    }

    fn assign_tasks(&mut self) {
        // 1. Resume restarted (Ready) tasks on their affined processors.
        for p in 0..self.procs.len() {
            if self.procs[p].running.is_some() {
                continue;
            }
            let ready = self
                .tasks
                .iter()
                .enumerate()
                .filter(|(i, t)| {
                    t.status == Status::Ready
                        && t.proc == Some(p)
                        // An escalated task waits for the head: once it is
                        // the oldest uncommitted task nothing can squash it.
                        && (!t.escalated || *i == self.oldest_uncommitted)
                })
                .map(|(i, _)| i)
                .min();
            if let Some(i) = ready {
                self.start_on(p, i, false);
            }
        }
        // 2. Start new tasks in order on free processors (lowest clock
        // first), respecting the per-processor version budget.
        loop {
            let Some(i) = self
                .tasks
                .iter()
                .position(|t| t.status == Status::NotStarted)
                .filter(|&i| self.tasks[i].ready_at.is_some())
            else {
                return;
            };
            let Some(p) = self
                .procs
                .iter()
                .enumerate()
                .filter(|(q, p)| p.running.is_none() && self.tasks_on_proc(*q) < VERSIONS_PER_PROC)
                .min_by_key(|(q, p)| (p.timer.now(), *q))
                .map(|(q, _)| q)
            else {
                return;
            };
            self.tasks[i].proc = Some(p);
            self.start_on(p, i, true);
        }
    }

    fn start_on(&mut self, p: usize, i: usize, fresh: bool) {
        // An escalated task is only non-speculative at the head; (re)starting
        // it anywhere else would let it be squashed again, defeating the
        // head-serialized fallback.
        let at_head = !self.tasks[i].escalated || i == self.oldest_uncommitted;
        let now = self.procs[p].timer.now();
        self.check_token_protocol(at_head, p, now, "escalated task started off the head");
        let t = &mut self.tasks[i];
        t.status = Status::Running;
        t.pc = 0;
        self.procs[p].running = Some(i);
        if fresh {
            let ready_at = t.ready_at.expect("spawned before start");
            self.procs[p].timer.wait_until(ready_at + self.cfg.spawn_overhead);
            if self.scheme.uses_signatures() {
                let v = self.procs[p].bdm.alloc_version().expect("version budget enforced");
                self.tasks[i].version = Some(v);
            }
            // Partial Overlap spawn-time invalidation: drop stale clean
            // copies of everything the parent wrote before the spawn.
            if self.scheme.partial_overlap() {
                if let Some(sig) = self.tasks[i].spawn_inval_sig.take() {
                    let inv = flows::invalidate_clean_matching(&sig, &mut self.procs[p].cache);
                    self.stats.spawn_invalidations += inv.len() as u64;
                }
                let lines = std::mem::take(&mut self.tasks[i].spawn_inval_lines);
                for l in lines {
                    if self.procs[p].cache.state_of(l) == Some(bulk_mem::LineState::Clean) {
                        self.procs[p].cache.invalidate(l);
                        self.stats.spawn_invalidations += 1;
                    }
                }
            }
        }
        if self.scheme.uses_signatures() {
            let v = self.tasks[i].version.expect("version allocated");
            self.procs[p].bdm.set_running(Some(v));
        }
        if let Some(obs) = &self.obs {
            self.tasks[i].section_span =
                obs.span_begin(p as u32, SpanKind::Section, self.procs[p].timer.now(), i as u64);
        }
    }

    fn step(&mut self, p: usize) {
        let i = self.procs[p].running.expect("running task");
        self.chaos_perturb(p);
        if self.tasks[i].pc >= self.tasks[i].ops.len() {
            self.finish_task(p, i);
            self.auditor.observe_clock(p, self.procs[p].timer.now());
            return;
        }
        let op = self.tasks[i].ops[self.tasks[i].pc];
        match op {
            TlsOp::Compute(n) => {
                self.procs[p].timer.compute(u64::from(n), &self.cfg);
                self.tasks[i].pc += 1;
            }
            TlsOp::Spawn => {
                self.op_spawn(p, i);
            }
            TlsOp::Read(a) => {
                self.op_read(p, i, a);
            }
            TlsOp::Write(a) => {
                self.op_write(p, i, a);
            }
        }
        if self.procs[p].running == Some(i) && self.tasks[i].pc >= self.tasks[i].ops.len() {
            self.finish_task(p, i);
        }
        self.auditor.observe_clock(p, self.procs[p].timer.now());
    }

    /// Chaos hook, consulted once per scheduled operation: forced context
    /// switches charge preemption time; forced evictions drop a clean
    /// resident line (stale-copy pressure — a speculative dirty line never
    /// silently leaves the cache).
    fn chaos_perturb(&mut self, p: usize) {
        let Some(plan) = &mut self.chaos else { return };
        if plan.force_context_switch() {
            let cycles = plan.config().ctx_switch_cycles;
            let pre = self.procs[p].timer.now();
            self.procs[p].timer.advance(cycles);
            if let Some(obs) = &self.obs {
                obs.on_ctx_switch(p as u32, self.procs[p].timer.now());
                obs.span_complete(p as u32, SpanKind::CtxSwitch, pre, self.procs[p].timer.now(), 0);
            }
        }
        let Some(plan) = &mut self.chaos else { return };
        if plan.force_eviction() {
            let mut clean: Vec<LineAddr> = self.procs[p]
                .cache
                .iter()
                .filter(|l| !l.is_dirty())
                .map(|l| l.addr())
                .collect();
            // Sort so the pick is a function of the cache *contents*, not of
            // the sets' internal order (which depends on the hash-ordered
            // invalidation history and differs run to run).
            clean.sort_unstable();
            if !clean.is_empty() {
                let plan = self.chaos.as_mut().expect("plan present");
                let victim = clean[plan.pick(clean.len())];
                self.procs[p].cache.invalidate(victim);
            }
        }
    }

    fn op_spawn(&mut self, p: usize, i: usize) {
        let now = self.procs[p].timer.now();
        self.tasks[i].w_prespawn = self.tasks[i].w_words.clone();
        if self.scheme.partial_overlap() && self.scheme.uses_signatures() {
            let v = self.tasks[i].version.expect("in flight");
            let snapshot = self.procs[p].bdm.begin_shadow(v);
            if let Some(child) = self.tasks.get_mut(i + 1) {
                if child.status == Status::NotStarted {
                    child.spawn_inval_sig = Some(snapshot);
                }
            }
        } else if self.scheme.partial_overlap() {
            let lines: Vec<LineAddr> = self.tasks[i]
                .w_prespawn
                .iter()
                .map(|w| w.line(self.cfg.geom.line_bytes()))
                .collect::<HashSet<_>>()
                .into_iter()
                .collect();
            if let Some(child) = self.tasks.get_mut(i + 1) {
                if child.status == Status::NotStarted {
                    child.spawn_inval_lines = lines;
                }
            }
        }
        if let Some(child) = self.tasks.get_mut(i + 1) {
            if child.ready_at.is_none() {
                child.ready_at = Some(now);
            }
        }
        self.tasks[i].pc += 1;
        self.procs[p].timer.advance(1);
    }

    fn op_read(&mut self, p: usize, i: usize, a: Addr) {
        let line = a.line(self.cfg.geom.line_bytes());
        let in_neighbor = self.neighbor_has(p, line);
        let mut bw = std::mem::take(&mut self.stats.bw);
        let proc = &mut self.procs[p];
        let acc = proc.timer.load(&mut proc.cache, line, in_neighbor, &self.cfg, &mut bw);
        self.stats.bw = bw;
        if acc.writeback.is_some() {
            self.stats.bw.record(MsgClass::Wb, self.cfg.msg_sizes.line_msg);
        }
        self.tasks[i].r_words.insert(a.word());
        if self.scheme.uses_signatures() {
            let v = self.tasks[i].version.expect("in flight");
            self.procs[p].bdm.record_load(v, a);
        }
        self.tasks[i].pc += 1;
    }

    fn op_write(&mut self, p: usize, i: usize, a: Addr) {
        let word = a.word();
        let line = a.line(self.cfg.geom.line_bytes());
        // Eager disambiguation: squash more-speculative tasks that already
        // touched this word.
        if self.scheme.is_eager() {
            let victim = (i + 1..self.tasks.len())
                .find(|&j| self.tasks[j].in_flight() && self.tasks[j].reads_or_writes(word));
            if let Some(j) = victim {
                let now = self.procs[p].timer.now();
                let dep = 1;
                self.squash_cascade(j, now, true, dep, Some(i));
            }
        }
        // Set Restriction enforcement (Bulk schemes only).
        if self.scheme.uses_signatures() {
            let v = self.tasks[i].version.expect("in flight");
            match check_speculative_store(&self.procs[p].bdm, v, a, &self.procs[p].cache) {
                StoreCheck::Proceed { safe_writebacks } => {
                    let n = safe_writebacks.len() as u64;
                    for wb in safe_writebacks {
                        self.procs[p].cache.mark_clean(wb);
                    }
                    self.stats.safe_writebacks += n;
                    self.stats.bw.record(MsgClass::Wb, n * self.cfg.msg_sizes.line_msg);
                }
                StoreCheck::ConflictWithPreempted => {
                    // The preempted owner is older; squash the most
                    // speculative of the two — this running task.
                    self.stats.wr_wr_set_conflicts += 1;
                    let now = self.procs[p].timer.now();
                    // The conflicting owner is a preempted co-resident
                    // version, not an identifiable squasher task.
                    self.squash_cascade(i, now, true, 0, None);
                    return; // task restarted; do not perform the write
                }
            }
        }
        let in_neighbor = self.neighbor_has(p, line);
        let mut bw = std::mem::take(&mut self.stats.bw);
        let proc = &mut self.procs[p];
        let acc = proc.timer.store(&mut proc.cache, line, in_neighbor, &self.cfg, &mut bw);
        self.stats.bw = bw;
        if acc.writeback.is_some() {
            self.stats.bw.record(MsgClass::Wb, self.cfg.msg_sizes.line_msg);
        }
        if self.scheme.is_eager() {
            // Eager schemes propagate the update (invalidation) right away.
            self.stats.bw.record(MsgClass::Inv, self.cfg.msg_sizes.addr_msg);
        }
        self.tasks[i].w_words.insert(word);
        if self.scheme.uses_signatures() {
            let v = self.tasks[i].version.expect("in flight");
            self.procs[p].bdm.record_store(v, a);
        }
        self.tasks[i].pc += 1;
    }

    fn finish_task(&mut self, p: usize, i: usize) {
        // An implicit spawn if the task never spawned explicitly.
        if let Some(child) = self.tasks.get_mut(i + 1) {
            if child.ready_at.is_none() {
                child.ready_at = Some(self.procs[p].timer.now());
            }
        }
        self.tasks[i].status = Status::WaitingCommit;
        self.tasks[i].finish_time = self.procs[p].timer.now();
        if let Some(obs) = &self.obs {
            // The attempt's processor occupancy ends here; the outcome
            // (Useful/Squashed) is resolved at commit or squash time.
            obs.span_end(self.tasks[i].section_span, self.tasks[i].finish_time);
        }
        self.procs[p].running = None;
        if self.scheme.uses_signatures() {
            self.procs[p].bdm.set_running(None);
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn try_commits(&mut self) -> Result<(), MachineError> {
        while self.oldest_uncommitted < self.tasks.len()
            && self.tasks[self.oldest_uncommitted].status == Status::WaitingCommit
        {
            let i = self.oldest_uncommitted;
            // The commit is a global event at `request`; defer it until
            // every running processor's clock has reached that time, so
            // receivers' access histories are complete up to the commit.
            let request = self.tasks[i].finish_time.max(self.last_commit_finish);
            let laggard = self
                .procs
                .iter()
                .any(|p| p.running.is_some() && p.timer.now() < request);
            if laggard {
                break;
            }
            self.commit_task(i)?;
            self.oldest_uncommitted += 1;
        }
        Ok(())
    }

    fn commit_task(&mut self, i: usize) -> Result<(), MachineError> {
        let p = self.tasks[i].proc.expect("committed task had a processor");
        let exact_w_words = self.tasks[i].w_words.clone();
        let exact_prespawn = self.tasks[i].w_prespawn.clone();
        let exact_lines: HashSet<LineAddr> = exact_w_words
            .iter()
            .map(|w| w.line(self.cfg.geom.line_bytes()))
            .collect();

        // Broadcast.
        let (payload, mut msg) = match self.scheme {
            TlsScheme::Eager => (0u64, CommitMsg::AddressList),
            TlsScheme::Lazy => {
                (exact_w_words.len() as u64 * self.cfg.msg_sizes.addr_msg, CommitMsg::AddressList)
            }
            TlsScheme::Bulk | TlsScheme::BulkNoOverlap => {
                let v = self.tasks[i].version.ok_or(MachineError::MissingVersion {
                    thread: i,
                    pc: self.tasks[i].pc,
                    context: "tls commit",
                })?;
                let sigs = self.procs[p].bdm.commit_with(v, &mut self.sig_arena);
                let mut payload = sigs.w.compressed_size_bits().div_ceil(8);
                if let Some(sh) = &sigs.w_sh {
                    payload += sh.compressed_size_bits().div_ceil(8);
                }
                let msg = match sigs.w_sh {
                    Some(sh) => CommitMsg::signatures_with_shadow(sigs.w, sh),
                    None => CommitMsg::signatures(sigs.w),
                };
                (payload, msg)
            }
        };
        // The commit point: the slot was cleared (clear-a-register commit,
        // §5.1), so the task is no longer speculative — mark it committed
        // *before* any cascade squash can audit it in a half-torn state.
        // Only the head task's slot may be cleared, and only from the
        // awaiting-commit state.
        let head_ok = i == self.oldest_uncommitted;
        let slot_ok = self.tasks[i].status == Status::WaitingCommit;
        let at = self.tasks[i].finish_time;
        self.check_token_protocol(head_ok, p, at, "commit slot cleared for a non-head task");
        self.check_token_protocol(slot_ok, p, at, "commit slot cleared while not awaiting commit");
        self.tasks[i].status = Status::Committed;

        // Chaos: arbitration denials with bounded backoff delay the commit
        // request; in-flight corruption, broadcast delay and duplication
        // perturb the delivery.
        let mut request = self.tasks[i].finish_time.max(self.last_commit_finish);
        // The commit span starts when the task first asks for the bus:
        // denial backoff and arbitration queueing are all commit time.
        let req0 = request;
        let mut attempt = 0u32;
        loop {
            let Some(plan) = self.chaos.as_mut() else { break };
            let Some(backoff) = plan.deny_commit(attempt) else { break };
            self.stats.commit_retries += 1;
            request += backoff;
            attempt += 1;
        }
        let (delay, duplicate) = match self.chaos.as_mut() {
            Some(plan) => {
                plan.maybe_corrupt(&mut msg);
                (plan.broadcast_delay(), plan.duplicate_broadcast())
            }
            None => (0, false),
        };

        let duration = self.cfg.commit_arb
            + if self.scheme.is_eager() { 0 } else { self.cfg.broadcast_cycles(payload) }
            + delay;
        let start = self.bus.acquire(request, duration);
        let mut finish = start + duration;
        if !self.scheme.is_eager() {
            self.stats.bw.record_commit(payload, &self.cfg.msg_sizes);
        }

        // Delivery: receivers CRC-check signature payloads; a detected
        // corruption is nacked and retransmitted from the pristine copy.
        let delivered = msg.deliver();
        if let Some(d) = &delivered {
            if d.corruption_detected {
                let retransmit = self
                    .chaos
                    .as_ref()
                    .map_or(0, |pl| pl.config().retransmit_cycles);
                let restart = self.bus.acquire(finish, retransmit);
                finish = restart + retransmit;
                self.stats.bw.record_commit(payload, &self.cfg.msg_sizes);
            }
            if let Some(plan) = self.chaos.as_mut() {
                plan.note_delivery(d.corruption_detected, d.silent_corruption);
            }
            if d.silent_corruption {
                self.auditor.record(
                    InvariantKind::UndetectedCorruption,
                    p,
                    finish,
                    "corrupted commit signature passed its CRC".to_string(),
                );
            }
        }
        // Arbiter failover: an armed chaos plan may crash the commit
        // arbiter mid-broadcast. The new epoch's leader replays the
        // in-flight commit; receivers dedup on the (committer, serial)
        // ticket so the W_C is applied exactly once. Re-election occupies
        // the bus (no broadcast can proceed while the arbiter lease times
        // out), keeping commit order total.
        let ticket = self
            .live
            .as_ref()
            .map(|l| l.ticket(i, u64::from(self.tasks[i].restarts)));
        let mut replay_rounds = 0u32;
        if self.live.is_some() {
            // Crash-during-replay: each crash re-elects and adds one more
            // replay round, bounded per broadcast so recovery terminates.
            let crash_cap = self
                .chaos
                .as_ref()
                .map_or(0, |plan| plan.config().max_crashes_per_broadcast);
            while replay_rounds < crash_cap
                && self.chaos.as_mut().is_some_and(|plan| plan.arbiter_crash())
            {
                let live = self.live.as_mut().expect("liveness armed");
                let reelect = live.arbiter_crash();
                let restart = self.bus.acquire(finish, reelect);
                finish = restart + reelect;
                replay_rounds += 1;
                if let Some(obs) = &self.obs {
                    obs.on_arbiter_failover(i as u32, finish, live.epoch());
                }
            }
        }
        self.last_commit_finish = finish;
        self.stats.commits += 1;
        // TLS tasks commit exactly once and in task order, so the task
        // index is the history identity and the ordinal is always 0.
        self.stats.history.push(CommitEvent { thread: i as u32, ordinal: 0, at: finish });
        if let Some(obs) = &self.obs {
            // Latency: bus request to broadcast completion on the bus lane.
            obs.on_commit(
                i as u32,
                finish,
                payload,
                exact_w_words.len() as u64,
                finish.saturating_sub(req0),
            );
            let sec = self.tasks[i].section_span;
            obs.span_outcome(sec, SpanOutcome::Useful);
            // Commit broadcasts serialize on the bus, so they live on a
            // dedicated bus lane (actor index one past the processors).
            let c = obs.span_child(
                self.procs.len() as u32,
                SpanKind::Commit,
                req0,
                exact_w_words.len() as u64,
                sec,
            );
            obs.span_end(c, finish);
            self.tasks[i].section_span = SpanId::DROPPED;
            // Squashes and bulk invalidations this broadcast triggers link
            // back to its commit span.
            self.commit_cause = c;
        }
        if self.tasks[i].escalated {
            self.stats.serialized_commits += 1;
        }
        self.stats.rd_set_words += self.tasks[i].r_words.len() as u64;
        self.stats.wr_set_words += self.tasks[i].w_words.len() as u64;


        // Disambiguate against more-speculative in-flight tasks, in order.
        let mut squash_from: Option<(usize, bool, u64)> = None;
        for j in i + 1..self.tasks.len() {
            if !self.tasks[j].in_flight() {
                if self.tasks[j].status == Status::NotStarted {
                    break;
                }
                continue;
            }
            let first_child = j == i + 1;
            let use_overlap = first_child && self.scheme.partial_overlap();
            let exact_conflict = {
                let t = &self.tasks[j];
                exact_w_words
                    .iter()
                    .filter(|w| !(use_overlap && exact_prespawn.contains(*w)))
                    .any(|w| t.reads_or_writes(*w))
            };
            let violated = match self.scheme {
                // Eager already detected and resolved every violation at
                // store time; by commit the successor's re-reads are in
                // correct order and must not squash again.
                TlsScheme::Eager => false,
                TlsScheme::Lazy => exact_conflict,
                TlsScheme::Bulk | TlsScheme::BulkNoOverlap => {
                    let Some(d) = delivered.as_ref() else {
                        return Err(MachineError::MalformedCommit {
                            scheme: "TLS-Bulk",
                            payload: "address-list",
                        });
                    };
                    let sig = match (&d.w_sh, use_overlap) {
                        (Some(sh), true) => sh,
                        _ => &d.w,
                    };
                    let q = self.tasks[j].proc.expect("in-flight task has proc");
                    let v = self.tasks[j].version.ok_or(MachineError::MissingVersion {
                        thread: j,
                        pc: self.tasks[j].pc,
                        context: "tls commit disambiguation",
                    })?;
                    // The signature came off the wire: a config mismatch is
                    // a malformed commit, not a machine panic.
                    let squash = self.procs[q]
                        .bdm
                        .try_disambiguate(v, sig)
                        .map_err(|_| MachineError::MalformedCommit {
                            scheme: "TLS-Bulk",
                            payload: "mismatched-signature-config",
                        })?
                        .squash();
                    if let Some(obs) = &self.obs {
                        obs.verdicts.record(squash, exact_conflict);
                    }
                    // A signature may alias but must never miss a real
                    // conflict (false negative).
                    if exact_conflict && !squash {
                        if self.auditor.enabled() {
                            self.auditor.record(
                                InvariantKind::SignatureContainment,
                                q,
                                finish,
                                format!(
                                    "commit of task {i} conflicts with task {j}'s \
                                     exact sets but the signature missed it"
                                ),
                            );
                        } else {
                            debug_assert!(false, "signature false negative");
                        }
                    }
                    squash
                }
            };
            if violated {
                let dep = {
                    let t = &self.tasks[j];
                    exact_w_words
                        .iter()
                        .filter(|w| !(use_overlap && exact_prespawn.contains(*w)))
                        .filter(|w| t.reads_or_writes(**w))
                        .count() as u64
                };
                squash_from = Some((j, exact_conflict, dep));
                break;
            }
        }

        // Apply commit invalidations to every other processor's cache. A
        // chaos-duplicated broadcast applies them a second time; the
        // second pass must be idempotent (already-invalidated lines are
        // simply absent).
        let rounds = if duplicate { 2 } else { 1 } + replay_rounds;
        let exp = self.obs.as_ref().map(|o| o.expansion.clone());
        let skip_proc_of_squashed = squash_from.map(|(j, _, _)| j);
        for round in 0..rounds {
            // Receiver-side dedup: only the first delivery of this commit's
            // ticket is applied; chaos duplicates and failover replays are
            // dropped here (and counted).
            if let (Some(live), Some(tk)) = (self.live.as_mut(), ticket) {
                if !live.admit(tk) {
                    if let Some(obs) = &self.obs {
                        obs.on_dedup_drop();
                    }
                    continue;
                }
            }
            for q in 0..self.procs.len() {
                if q == p {
                    continue;
                }
                // Squashed tasks' caches get cleaned by the squash itself;
                // the commit invalidation still applies to lines of *other*
                // tasks on that processor, so we apply it everywhere.
                let _ = skip_proc_of_squashed;
                match self.scheme {
                    TlsScheme::Eager | TlsScheme::Lazy => {
                        self.exact_apply_commit(q, &exact_lines, &exact_w_words);
                    }
                    TlsScheme::Bulk | TlsScheme::BulkNoOverlap => {
                        let w = &delivered.as_ref().expect("bulk commit delivers signatures").w;
                        let proc = &mut self.procs[q];
                        let app = flows::apply_remote_commit_observed(
                            &proc.bdm,
                            w,
                            &mut proc.cache,
                            exp.as_ref(),
                        );
                        if round > 0 {
                            continue; // duplicate delivery: no new stats
                        }
                        let false_inv = app
                            .invalidated
                            .iter()
                            .filter(|l| !exact_lines.contains(l))
                            .count() as u64;
                        self.stats.false_invalidations += false_inv;
                        if let Some(obs) = &self.obs {
                            let lines = app.invalidated.len() as u64;
                            obs.on_bulk_invalidate(q as u32, finish, lines, lines - false_inv);
                            if lines > 0 {
                                let inv = obs.span_complete(
                                    q as u32,
                                    SpanKind::BulkInvalidate,
                                    finish,
                                    finish,
                                    lines,
                                );
                                obs.span_link(self.commit_cause, inv);
                            }
                        }
                        self.stats.line_merges += app.merged.len() as u64;
                        // Merged lines are refetched from the network (Fig. 6).
                        self.stats.bw.record(
                            MsgClass::Fill,
                            app.merged.len() as u64 * self.cfg.msg_sizes.line_msg,
                        );
                    }
                }
            }
            if let (Some(live), Some(tk)) = (self.live.as_mut(), ticket) {
                live.record_application(tk);
            }
        }

        if let Some((j, truly, dep)) = squash_from {
            self.squash_cascade(j, finish, truly, dep, Some(i));
        }
        self.commit_cause = SpanId::DROPPED;

        // The delivered (wire) signatures are dead now — recycle their
        // buffers for the next broadcast.
        if let Some(d) = delivered {
            self.sig_arena.give(d.w);
            if let Some(sh) = d.w_sh {
                self.sig_arena.give(sh);
            }
        }

        // Committer cleanup.
        if self.scheme.uses_signatures() {
            if let Some(v) = self.tasks[i].version.take() {
                self.procs[p].bdm.free_version(v);
            }
        }

        self.auditor.observe_commit(p, finish);
        if let Some(live) = &mut self.live {
            live.on_commit(i, finish);
            // A TLS task commits exactly once; it can no longer starve.
            live.on_done(i);
        }
        if self.auditor.enabled() {
            // Serializability: any surviving in-flight task whose exact
            // sets overlap the committed (non-overlap-covered) writes
            // should have been squashed — except under Eager, where the
            // violation was already resolved at store time.
            if self.scheme != TlsScheme::Eager {
                for j in i + 1..self.tasks.len() {
                    let t = &self.tasks[j];
                    if !t.in_flight() {
                        continue;
                    }
                    let use_overlap = j == i + 1 && self.scheme.partial_overlap();
                    if let Some(w) = exact_w_words
                        .iter()
                        .filter(|w| !(use_overlap && exact_prespawn.contains(*w)))
                        .find(|w| t.reads_or_writes(**w))
                    {
                        let q = t.proc.unwrap_or(0);
                        let detail = format!(
                            "task {j} survived the commit of task {i} despite an \
                             exact-set overlap at word {w:?}"
                        );
                        self.auditor.record(InvariantKind::Serializability, q, finish, detail);
                    }
                }
            }
            self.audit_state(finish);
        }
        Ok(())
    }

    /// Feeds the auditor the whole machine state: the Set Restriction for
    /// every processor's cache/BDM pair, and signature-vs-oracle
    /// containment for every in-flight task.
    fn audit_state(&mut self, cycle: u64) {
        if !self.auditor.enabled() {
            return;
        }
        for q in 0..self.procs.len() {
            let proc = &self.procs[q];
            self.auditor.audit_set_restriction(q, cycle, &proc.bdm, &proc.cache);
        }
        if !self.scheme.uses_signatures() {
            return;
        }
        for k in 0..self.tasks.len() {
            let t = &self.tasks[k];
            if !t.in_flight() {
                continue;
            }
            let (Some(q), Some(v)) = (t.proc, t.version) else { continue };
            let bdm = &self.procs[q].bdm;
            let r = bdm.read_signature(v);
            let w = bdm.write_signature(v);
            let missing = t
                .r_words
                .iter()
                .find(|word| !r.contains_word(**word))
                .map(|word| format!("task {k}: read word {word:?} not in the R signature"))
                .or_else(|| {
                    t.w_words
                        .iter()
                        .find(|word| !w.contains_word(**word))
                        .map(|word| format!("task {k}: written word {word:?} not in the W signature"))
                });
            self.auditor.audit_containment(q, cycle, missing);
        }
    }

    /// Exact-scheme commit application: invalidate committed lines in
    /// cache `q`, except lines partially written by a local in-flight task
    /// (those merge word-wise, as per-word access bits would allow).
    fn exact_apply_commit(
        &mut self,
        q: usize,
        lines: &HashSet<LineAddr>,
        words: &HashSet<WordAddr>,
    ) {
        let line_bytes = self.cfg.geom.line_bytes();
        let local_written: HashSet<LineAddr> = self
            .tasks
            .iter()
            .filter(|t| t.proc == Some(q) && t.in_flight())
            .flat_map(|t| t.w_words.iter().map(|w| w.line(line_bytes)))
            .collect();
        let _ = words;
        for &l in lines {
            if local_written.contains(&l) {
                continue; // word-merged in place
            }
            self.procs[q].cache.invalidate(l);
        }
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    fn squash_cascade(&mut self, from: usize, at: u64, truly: bool, dep: u64, by: Option<usize>) {
        if truly {
            self.stats.dep_set_words += dep;
            self.stats.dep_samples += 1;
        }
        for k in from..self.tasks.len() {
            match self.tasks[k].status {
                Status::NotStarted => break,
                Status::Running | Status::WaitingCommit => {
                    self.squash_task(k, at, truly, if k == from { dep } else { 0 }, by);
                }
                Status::Ready | Status::Committed => {}
            }
        }
    }

    fn squash_task(&mut self, k: usize, at: u64, truly: bool, dep: u64, by: Option<usize>) {
        // An escalated task runs only at the head, where no older peer
        // exists to squash it (a wr-wr set conflict with a co-resident
        // preempted version has no peer and is exempt).
        let unsquashable =
            by.is_some() && self.tasks[k].escalated && k == self.oldest_uncommitted;
        let proc_of_k = self.tasks[k].proc.unwrap_or(0);
        self.check_token_protocol(!unsquashable, proc_of_k, at, "escalated head task squashed");
        self.stats.squashes += 1;
        if !truly {
            self.stats.false_squashes += 1;
        }
        if let Some(obs) = &self.obs {
            obs.on_squash(k as u32, at, truly, dep);
        }
        let was_running = self.tasks[k].status == Status::Running;
        let p = self.tasks[k].proc.expect("in-flight task has proc");
        let pre = self.procs[p].timer.now();
        if self.scheme.uses_signatures() {
            let v = self.tasks[k].version.expect("in-flight task has version");
            // TLS squash also invalidates lines the task read (§6.3).
            let exp = self.obs.as_ref().map(|o| o.expansion.clone());
            let proc = &mut self.procs[p];
            flows::squash_observed(&mut proc.bdm, v, &mut proc.cache, true, exp.as_ref());
        } else {
            let line_bytes = self.cfg.geom.line_bytes();
            let dirty: Vec<LineAddr> = self.tasks[k]
                .w_words
                .iter()
                .map(|w| w.line(line_bytes))
                .filter(|l| self.procs[p].cache.state_of(*l) == Some(bulk_mem::LineState::Dirty))
                .collect();
            for l in dirty {
                self.procs[p].cache.invalidate(l);
            }
            let read: Vec<LineAddr> = self.tasks[k]
                .r_words
                .iter()
                .map(|w| w.line(line_bytes))
                .filter(|l| self.procs[p].cache.state_of(*l) == Some(bulk_mem::LineState::Clean))
                .collect();
            for l in read {
                self.procs[p].cache.invalidate(l);
            }
        }
        if self.procs[p].running == Some(k) {
            self.procs[p].running = None;
            if self.scheme.uses_signatures() {
                self.procs[p].bdm.set_running(None);
            }
        }
        let t = &mut self.tasks[k];
        t.r_words.clear();
        t.w_words.clear();
        t.w_prespawn.clear();
        t.pc = 0;
        t.status = Status::Ready;
        t.restarts += 1;
        // Graceful degradation: enough restarts and the task defers its
        // next start until it runs at the head, where it cannot be
        // squashed again.
        if let Some(threshold) = self.escalation {
            if !t.escalated && t.restarts >= threshold {
                t.escalated = true;
                self.stats.escalations += 1;
                if let Some(obs) = &self.obs {
                    obs.on_escalation(k as u32, at);
                }
            }
        }
        self.procs[p].timer.wait_until(at);
        self.procs[p].timer.advance(self.cfg.squash_overhead);
        if let Some(obs) = &self.obs {
            let sec = self.tasks[k].section_span;
            if was_running {
                // A running victim's attempt ends where the squash begins;
                // a waiting-commit victim's span already ended at finish.
                obs.span_end(sec, pre);
            }
            obs.span_outcome(sec, SpanOutcome::Squashed);
            self.tasks[k].section_span = SpanId::DROPPED;
            let post = self.procs[p].timer.now();
            let sq = obs.span_complete(p as u32, SpanKind::Squash, pre, post, dep);
            obs.span_link(self.commit_cause, sq);
        }
        if self.live.is_some() {
            // Age-based backoff: the victim's processor sits out a bounded,
            // jittered wait before the task is eligible to restart.
            let age_rank = k.saturating_sub(self.oldest_uncommitted);
            let live = self.live.as_mut().expect("liveness armed");
            let wait = live.on_squash(by, k, !truly, age_rank, at);
            let b0 = self.procs[p].timer.now();
            self.procs[p].timer.advance(wait);
            if let Some(obs) = &self.obs {
                obs.on_backoff(k as u32, at, wait);
                if wait > 0 {
                    obs.span_complete(p as u32, SpanKind::Backoff, b0, b0 + wait, 0);
                }
            }
        }
        self.audit_state(at);
    }

    /// The shared signature configuration of this machine.
    pub fn signature_config(&self) -> &Arc<SignatureConfig> {
        &self.sig_config
    }

    fn neighbor_has(&self, p: usize, line: LineAddr) -> bool {
        self.procs
            .iter()
            .enumerate()
            .any(|(q, proc)| q != p && proc.cache.contains(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_trace::{profiles, TaskTrace};

    fn cfg() -> SimConfig {
        SimConfig::tls_default()
    }

    fn workload(tasks: Vec<Vec<TlsOp>>) -> TlsWorkload {
        TlsWorkload {
            name: "test".into(),
            tasks: tasks.into_iter().map(|ops| TaskTrace { ops }).collect(),
        }
    }

    fn w(a: u32) -> TlsOp {
        TlsOp::Write(Addr::new(a))
    }

    fn r(a: u32) -> TlsOp {
        TlsOp::Read(Addr::new(a))
    }

    #[test]
    fn independent_tasks_all_commit() {
        let tasks: Vec<Vec<TlsOp>> = (0..8u32)
            .map(|i| vec![TlsOp::Spawn, w(0x1_0000 + i * 0x100), TlsOp::Compute(50)])
            .collect();
        for s in TlsScheme::ALL {
            let stats = run_tls(&workload(tasks.clone()), s, &cfg());
            assert_eq!(stats.commits, 8, "{s}");
            assert_eq!(stats.squashes, 0, "{s}");
        }
    }

    #[test]
    fn parallel_run_beats_sequential() {
        let p = profiles::tls_profile("gap").unwrap();
        let wl = p.generate(3);
        let seq = run_tls_sequential(&wl, &cfg());
        let par = run_tls(&wl, TlsScheme::Bulk, &cfg());
        assert!(par.cycles < seq, "par {} vs seq {seq}", par.cycles);
    }

    #[test]
    fn true_dependence_squashes_in_all_schemes() {
        // Task 0 writes X late; task 1 reads X early.
        let tasks = vec![
            vec![TlsOp::Spawn, TlsOp::Compute(5000), w(0x9000)],
            vec![TlsOp::Spawn, r(0x9000), TlsOp::Compute(100)],
        ];
        for s in TlsScheme::ALL {
            let stats = run_tls(&workload(tasks.clone()), s, &cfg());
            assert_eq!(stats.commits, 2, "{s}");
            assert!(stats.squashes >= 1, "{s}: {stats:?}");
        }
    }

    #[test]
    fn partial_overlap_prevents_live_in_squash() {
        // Task 0 writes the live-in BEFORE spawning; task 1 reads it.
        let tasks = vec![
            vec![w(0x9000), TlsOp::Spawn, TlsOp::Compute(5000)],
            vec![TlsOp::Spawn, r(0x9000), TlsOp::Compute(100)],
        ];
        let with = run_tls(&workload(tasks.clone()), TlsScheme::Bulk, &cfg());
        assert_eq!(with.squashes, 0, "partial overlap: {with:?}");
        let without = run_tls(&workload(tasks.clone()), TlsScheme::BulkNoOverlap, &cfg());
        assert!(without.squashes >= 1, "no overlap: {without:?}");
        let lazy = run_tls(&workload(tasks), TlsScheme::Lazy, &cfg());
        assert_eq!(lazy.squashes, 0, "lazy has exact overlap: {lazy:?}");
    }

    #[test]
    fn squash_cascade_hits_descendants() {
        // Task 0 violates task 1 -> tasks 1..n restart.
        let mut tasks = vec![vec![TlsOp::Spawn, TlsOp::Compute(20_000), w(0x9000)]];
        tasks.push(vec![TlsOp::Spawn, r(0x9000), TlsOp::Compute(3000)]);
        for i in 0..3u32 {
            tasks.push(vec![TlsOp::Spawn, w(0xA000 + i * 0x100), TlsOp::Compute(3000)]);
        }
        let stats = run_tls(&workload(tasks), TlsScheme::Lazy, &cfg());
        assert_eq!(stats.commits, 5);
        assert!(stats.squashes >= 2, "cascade: {stats:?}");
    }

    #[test]
    fn word_level_disambiguation_merges_instead_of_squashing() {
        // Adjacent tasks write different words of the same line.
        let line_base = 0x3000_0000u32;
        let tasks = vec![
            vec![TlsOp::Spawn, w(line_base), TlsOp::Compute(2000)],
            vec![TlsOp::Spawn, w(line_base + 4), TlsOp::Compute(4000)],
        ];
        let stats = run_tls(&workload(tasks), TlsScheme::Bulk, &cfg());
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.squashes, 0, "different words must not conflict: {stats:?}");
    }

    #[test]
    fn eager_restarts_earlier_than_lazy() {
        let p = profiles::tls_profile("gzip").unwrap(); // high violation rate
        let wl = p.generate(9);
        let eager = run_tls(&wl, TlsScheme::Eager, &cfg());
        let lazy = run_tls(&wl, TlsScheme::Lazy, &cfg());
        assert!(eager.cycles <= lazy.cycles, "eager {} lazy {}", eager.cycles, lazy.cycles);
    }

    #[test]
    fn profile_run_matches_table6_footprints() {
        let p = profiles::tls_profile("bzip2").unwrap();
        let wl = p.generate(1);
        let stats = run_tls(&wl, TlsScheme::Bulk, &cfg());
        assert_eq!(stats.commits as usize, p.tasks);
        assert!((stats.avg_rd_set() - p.rd_words).abs() < p.rd_words * 0.5,
            "rd {}", stats.avg_rd_set());
        assert!((stats.avg_wr_set() - p.wr_words).abs() < p.wr_words * 0.6,
            "wr {}", stats.avg_wr_set());
    }

    #[test]
    fn spawn_invalidation_counts_with_overlap() {
        // Parent writes X pre-spawn; the child's processor holds a stale
        // clean copy of X which the spawn-time bulk invalidation drops.
        // Only the FIRST child is covered by Partial Overlap: task 1 reads
        // the live-in safely; task 2 reads unrelated data.
        let tasks = vec![
            vec![TlsOp::Read(Addr::new(0x9000)), w(0x9000), TlsOp::Spawn, TlsOp::Compute(3000)],
            vec![TlsOp::Spawn, r(0x9000), TlsOp::Compute(50)],
            vec![TlsOp::Spawn, r(0xA000), TlsOp::Compute(50)],
        ];
        let stats = run_tls(&workload(tasks), TlsScheme::Bulk, &cfg());
        assert_eq!(stats.commits, 3);
        assert_eq!(stats.squashes, 0, "{stats:?}");

        // A SECOND child reading the pre-spawn write is *not* covered and
        // squashes when the parent commits — the paper's simplification.
        let tasks = vec![
            vec![w(0x9000), TlsOp::Spawn, TlsOp::Compute(3000)],
            vec![TlsOp::Spawn, TlsOp::Compute(50)],
            vec![TlsOp::Spawn, r(0x9000), TlsOp::Compute(50)],
        ];
        let stats = run_tls(&workload(tasks), TlsScheme::Bulk, &cfg());
        assert_eq!(stats.commits, 3);
        assert!(stats.squashes >= 1, "second child is unprotected: {stats:?}");
    }

    #[test]
    fn restarted_tasks_keep_processor_affinity() {
        // A violating chain: every squash must restart tasks and still
        // commit everything exactly once, in order.
        let mut tasks = Vec::new();
        for i in 0..12u32 {
            tasks.push(vec![
                TlsOp::Spawn,
                r(0x5000 + ((i + 15) % 16) * 4),
                TlsOp::Compute(400),
                w(0x5000 + (i % 16) * 4),
            ]);
        }
        for s in TlsScheme::ALL {
            let stats = run_tls(&workload(tasks.clone()), s, &cfg());
            assert_eq!(stats.commits, 12, "{s}");
        }
    }

    #[test]
    fn wr_wr_set_conflict_squashes_running_task() {
        // Task 0 finishes quickly but cannot commit until... it's oldest,
        // so it commits immediately. Use tasks 1/2 on one processor: task 1
        // waits for slow task 0; its processor starts task 2 (version 2),
        // whose write hits task 1's dirty set -> Set Restriction conflict.
        let line = |s: u32| 0x4_0000 + s * 64; // set s, distinct tag region
        let tasks = vec![
            // Slow head task holds up all commits (chunked so its
            // processor stays busy in simulation order).
            {
                let mut ops = vec![TlsOp::Spawn];
                ops.extend(std::iter::repeat_n(TlsOp::Compute(1000), 60));
                ops
            },
            // Tasks 1-3 fill the other processors; task 1 dirties set 7
            // and then waits for the commit token.
            vec![TlsOp::Spawn, w(line(7)), TlsOp::Compute(10)],
            // Tasks 2-3 run long in small steps, so their processors stay
            // busy and task 1's processor is the free one when task 4
            // becomes ready.
            {
                let mut ops = vec![TlsOp::Spawn];
                ops.extend(std::iter::repeat_n(TlsOp::Compute(100), 8));
                ops
            },
            {
                let mut ops = vec![TlsOp::Spawn];
                ops.extend(std::iter::repeat_n(TlsOp::Compute(100), 8));
                ops
            },
            // Task 4 reuses task 1's processor (second version slot) and
            // writes a DIFFERENT line of set 7 while task 1 still waits.
            vec![TlsOp::Spawn, w(line(7) + 0x10_0000), TlsOp::Compute(10)],
        ];
        let stats = run_tls(&workload(tasks), TlsScheme::Bulk, &cfg());
        assert_eq!(stats.commits, 5);
        assert!(
            stats.wr_wr_set_conflicts >= 1,
            "co-resident versions dirtying one set must conflict: {stats:?}"
        );
    }

    #[test]
    fn bulk_commit_carries_shadow_signature_bytes() {
        let tasks = vec![
            vec![w(0x9000), TlsOp::Spawn, w(0x9100), TlsOp::Compute(500)],
            vec![TlsOp::Spawn, TlsOp::Compute(10)],
        ];
        let with = run_tls(&workload(tasks.clone()), TlsScheme::Bulk, &cfg());
        let without = run_tls(&workload(tasks), TlsScheme::BulkNoOverlap, &cfg());
        // Overlap mode broadcasts W plus W_sh: strictly more commit bytes.
        assert!(
            with.bw.commit_bytes() > without.bw.commit_bytes(),
            "with {} vs without {}",
            with.bw.commit_bytes(),
            without.bw.commit_bytes()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let p = profiles::tls_profile("vpr").unwrap();
        let wl = p.generate(5);
        let a = run_tls(&wl, TlsScheme::Bulk, &cfg());
        let b = run_tls(&wl, TlsScheme::Bulk, &cfg());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.squashes, b.squashes);
    }

    #[test]
    fn sequential_baseline_is_deterministic() {
        let p = profiles::tls_profile("mcf").unwrap();
        let wl = p.generate(5);
        assert_eq!(run_tls_sequential(&wl, &cfg()), run_tls_sequential(&wl, &cfg()));
    }

    #[test]
    fn try_new_reports_typed_errors() {
        let empty = TlsWorkload { name: "none".into(), tasks: vec![] };
        let err = TlsMachine::try_new(&empty, TlsScheme::Bulk, &cfg()).err().expect("must fail");
        assert_eq!(err, MachineError::EmptyWorkload { machine: "tls" });

        let bad = workload(vec![vec![TlsOp::Spawn, TlsOp::Spawn, w(0x9000)]]);
        let err = TlsMachine::try_new(&bad, TlsScheme::Bulk, &cfg()).err().expect("must fail");
        assert!(matches!(err, MachineError::Trace { thread: 0, .. }), "{err}");
    }

    #[test]
    fn escalated_task_finishes_at_the_head() {
        // Task 1 re-reads what slow task 0 writes late: under Lazy it
        // restarts on every one of task 0's staggered commits. With an
        // aggressive threshold it escalates, waits for the head, and then
        // commits serialized.
        let tasks = vec![
            vec![TlsOp::Spawn, TlsOp::Compute(5000), w(0x9000)],
            vec![TlsOp::Spawn, r(0x9000), TlsOp::Compute(100)],
        ];
        let mut m = TlsMachine::new(&workload(tasks), TlsScheme::Lazy, &cfg());
        m.set_escalation_threshold(Some(1));
        let stats = m.try_run().expect("run completes");
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.escalations, 1, "{stats:?}");
        assert_eq!(stats.serialized_commits, 1, "{stats:?}");
    }

    #[test]
    fn liveness_chaos_run_is_deterministic_and_clean() {
        let p = profiles::tls_profile("gzip").unwrap(); // high violation rate
        let wl = p.generate(4);
        let run = |seed: u64| {
            let mut m = TlsMachine::new(&wl, TlsScheme::Bulk, &cfg());
            m.set_chaos(bulk_chaos::FaultPlan::seeded(seed));
            m.enable_audit();
            m.enable_liveness(bulk_live::LivenessConfig::default());
            m.try_run().expect("liveness run completes")
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.liveness, b.liveness);
        assert_eq!(a.commits as usize, p.tasks);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.liveness_violations.is_empty(), "{:?}", a.liveness_violations);
        assert!(a.squashes > 0, "gzip must squash: {a:?}");
        assert!(a.liveness.backoff_waits > 0, "{:?}", a.liveness);
        assert_eq!(a.liveness.duplicate_applications, 0, "{:?}", a.liveness);
    }

    #[test]
    fn arbiter_crash_is_survived_with_exactly_once_application() {
        let p = profiles::tls_profile("vpr").unwrap();
        let wl = p.generate(2);
        let run = || {
            let mut m = TlsMachine::new(&wl, TlsScheme::Bulk, &cfg());
            m.set_chaos(bulk_chaos::FaultPlan::new(bulk_chaos::ChaosConfig::arbiter_crash(9)));
            m.enable_audit();
            m.enable_liveness(bulk_live::LivenessConfig::default());
            m.try_run().expect("failover run completes")
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.liveness, b.liveness);
        assert!(a.liveness.arbiter_crashes > 0, "{:?}", a.liveness);
        assert_eq!(a.chaos.arbiter_crashes, a.liveness.arbiter_crashes);
        assert_eq!(a.liveness.arbiter_epoch, a.liveness.arbiter_crashes);
        assert_eq!(a.liveness.replayed_commits, a.liveness.arbiter_crashes);
        assert!(a.liveness.dedup_drops >= a.liveness.replayed_commits, "{:?}", a.liveness);
        assert_eq!(a.liveness.duplicate_applications, 0, "{:?}", a.liveness);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.liveness_violations.is_empty(), "{:?}", a.liveness_violations);
        assert_eq!(a.commits as usize, p.tasks, "every task commits despite crashes");
    }

    #[test]
    fn scripted_double_crash_during_replay_is_survived_in_tls() {
        // Crash-during-replay on the TLS side: the schedule kills the
        // arbiter twice during the first task's commit broadcast. Both
        // re-elections and both replay rounds happen; receiver dedup drops
        // every extra round and no task's W_C is applied twice or lost.
        use bulk_chaos::{BroadcastSchedule, ScheduleScript};
        let p = profiles::tls_profile("vpr").unwrap();
        let wl = p.generate(2);
        let script = ScheduleScript::from_pattern(vec![BroadcastSchedule {
            crashes: 2,
            ..BroadcastSchedule::QUIET
        }]);
        let run = || {
            let mut m = TlsMachine::new(&wl, TlsScheme::Bulk, &cfg());
            m.set_chaos(script.clone().into_plan());
            m.enable_audit();
            m.enable_liveness(bulk_live::LivenessConfig::default());
            m.try_run().expect("double crash is survived")
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles, "scripted runs are deterministic");
        assert_eq!(a.liveness, b.liveness);
        assert_eq!(a.liveness.arbiter_crashes, 2, "{:?}", a.liveness);
        assert_eq!(a.liveness.arbiter_epoch, 2);
        assert_eq!(a.liveness.replayed_commits, 2);
        assert_eq!(a.liveness.dedup_drops, script.expected_dedup_drops());
        assert_eq!(a.liveness.duplicate_applications, 0);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.liveness_violations.is_empty(), "{:?}", a.liveness_violations);
        assert_eq!(a.commits as usize, p.tasks);
    }

    #[test]
    fn escalated_head_task_serializes_cleanly_under_liveness() {
        let tasks = vec![
            vec![TlsOp::Spawn, TlsOp::Compute(5000), w(0x9000)],
            vec![TlsOp::Spawn, r(0x9000), TlsOp::Compute(100)],
        ];
        let mut m = TlsMachine::new(&workload(tasks), TlsScheme::Lazy, &cfg());
        m.set_escalation_threshold(Some(1));
        m.enable_audit();
        m.enable_liveness(bulk_live::LivenessConfig::default());
        let stats = m.try_run().expect("run completes");
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.escalations, 1, "{stats:?}");
        assert_eq!(stats.serialized_commits, 1, "{stats:?}");
        assert!(stats.violations.is_empty(), "{:?}", stats.violations);
        assert!(stats.liveness_violations.is_empty(), "{:?}", stats.liveness_violations);
        assert!(stats.liveness.backoff_waits > 0, "{:?}", stats.liveness);
    }

    #[test]
    fn escalated_task_started_off_the_head_is_reported() {
        let tasks = vec![
            vec![TlsOp::Spawn, TlsOp::Compute(100)],
            vec![TlsOp::Spawn, TlsOp::Compute(100)],
        ];
        let mut m = TlsMachine::new(&workload(tasks), TlsScheme::Lazy, &cfg());
        m.enable_audit();
        m.tasks[1].escalated = true;
        m.tasks[1].proc = Some(0);
        m.start_on(0, 1, false);
        let violations = m.auditor.take_violations();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].kind, InvariantKind::TokenProtocol);
        assert!(violations[0].detail.contains("off the head"), "{violations:?}");
    }

    #[test]
    fn chaos_run_is_deterministic_and_clean_under_audit() {
        let p = profiles::tls_profile("vpr").unwrap();
        let wl = p.generate(4);
        let run = |seed: u64| {
            let mut m = TlsMachine::new(&wl, TlsScheme::Bulk, &cfg());
            m.set_chaos(bulk_chaos::FaultPlan::seeded(seed));
            m.enable_audit();
            m.try_run().expect("chaos run completes")
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.chaos, b.chaos);
        assert!(
            a.violations.is_empty(),
            "chaos must cost time, never correctness: {:?}",
            a.violations
        );
        assert!(a.audit_checks > 0);
        assert_eq!(a.chaos.corruptions_injected, a.chaos.corruptions_detected, "{:?}", a.chaos);
        assert_eq!(a.chaos.silent_corruptions, 0);
        assert!(a.chaos.total_injected() > 0, "{:?}", a.chaos);
        assert_eq!(a.commits as usize, p.tasks);
    }
}
