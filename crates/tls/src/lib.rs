//! Thread-level-speculation runtime for the Bulk reproduction: ordered
//! speculative tasks on the paper's 4-processor machine, with in-order
//! commit, squash cascades, word-granularity disambiguation, Partial
//! Overlap (§6.3) and the multi-version BDM that makes the Set
//! Restriction's write–write conflicts observable (Table 6).
//!
//! ```
//! use bulk_sim::SimConfig;
//! use bulk_tls::{run_tls, run_tls_sequential, TlsScheme};
//! use bulk_trace::profiles;
//!
//! let wl = profiles::tls_profile("mcf").unwrap().generate(1);
//! let cfg = SimConfig::tls_default();
//! let seq = run_tls_sequential(&wl, &cfg);
//! let bulk = run_tls(&wl, TlsScheme::Bulk, &cfg);
//! assert!(bulk.cycles < seq); // speculative parallelism pays off
//! ```

#![warn(missing_docs)]

mod machine;
mod scheme;
mod stats;

pub use machine::{run_tls, run_tls_observed, run_tls_sequential, TlsMachine};
pub use scheme::TlsScheme;
pub use stats::TlsStats;
