//! Conflict-detection schemes compared in the paper's TLS evaluation
//! (Fig. 10).

use std::fmt;

/// Which scheme the TLS machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlsScheme {
    /// Conventional eager scheme: exact word-level disambiguation at each
    /// store, squashing offending successors immediately.
    Eager,
    /// Conventional lazy scheme: exact word sets disambiguated at commit.
    /// Includes exact-information Partial Overlap support, as the paper's
    /// Lazy baseline does ("to have a fair comparison with Bulk").
    Lazy,
    /// The paper's scheme with word-granularity signatures and Partial
    /// Overlap (§6.3) — the default Bulk configuration of Fig. 10.
    Bulk,
    /// Bulk without Partial Overlap (the `BulkNoOverlap` bar of Fig. 10).
    BulkNoOverlap,
}

impl TlsScheme {
    /// All schemes in the order Fig. 10 plots them.
    pub const ALL: [TlsScheme; 4] =
        [TlsScheme::Eager, TlsScheme::Lazy, TlsScheme::Bulk, TlsScheme::BulkNoOverlap];

    /// Whether the scheme uses signatures.
    pub fn uses_signatures(self) -> bool {
        matches!(self, TlsScheme::Bulk | TlsScheme::BulkNoOverlap)
    }

    /// Whether Partial Overlap (shadow signatures / pre-spawn exclusion)
    /// is enabled.
    pub fn partial_overlap(self) -> bool {
        matches!(self, TlsScheme::Lazy | TlsScheme::Bulk)
    }

    /// Whether conflicts are detected at store time.
    pub fn is_eager(self) -> bool {
        self == TlsScheme::Eager
    }
}

impl TlsScheme {
    /// Stable kebab-case name — the CLI/job-spec wire form, the inverse
    /// of [`TlsScheme::from_str`].
    ///
    /// [`TlsScheme::from_str`]: std::str::FromStr::from_str
    pub fn kebab_name(self) -> &'static str {
        match self {
            TlsScheme::Eager => "eager",
            TlsScheme::Lazy => "lazy",
            TlsScheme::Bulk => "bulk",
            TlsScheme::BulkNoOverlap => "bulk-no-overlap",
        }
    }
}

impl std::str::FromStr for TlsScheme {
    type Err = String;

    /// Parses the kebab-case CLI name (`bulk`, `bulk-no-overlap`, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TlsScheme::ALL
            .into_iter()
            .find(|scheme| scheme.kebab_name() == s)
            .ok_or_else(|| {
                format!("unknown TLS scheme `{s}` (expected eager|lazy|bulk|bulk-no-overlap)")
            })
    }
}

impl fmt::Display for TlsScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TlsScheme::Eager => "TLS-Eager",
            TlsScheme::Lazy => "TLS-Lazy",
            TlsScheme::Bulk => "TLS-Bulk",
            TlsScheme::BulkNoOverlap => "TLS-BulkNoOverlap",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(TlsScheme::Eager.is_eager());
        assert!(!TlsScheme::Bulk.is_eager());
        assert!(TlsScheme::Bulk.uses_signatures());
        assert!(TlsScheme::BulkNoOverlap.uses_signatures());
        assert!(TlsScheme::Bulk.partial_overlap());
        assert!(!TlsScheme::BulkNoOverlap.partial_overlap());
        assert!(TlsScheme::Lazy.partial_overlap());
    }

    #[test]
    fn display_names_match_figure10() {
        assert_eq!(TlsScheme::BulkNoOverlap.to_string(), "TLS-BulkNoOverlap");
    }

    #[test]
    fn kebab_names_round_trip_from_str() {
        for s in TlsScheme::ALL {
            assert_eq!(s.kebab_name().parse::<TlsScheme>(), Ok(s));
        }
        assert!("TLS-Bulk".parse::<TlsScheme>().is_err());
    }
}
