//! Statistics collected by a TLS run — everything Table 6 and Fig. 10
//! report.

use bulk_chaos::{FaultStats, InvariantViolation};
use bulk_core::CommitEvent;
use bulk_live::{LiveStats, LivenessViolation};
use bulk_mem::BandwidthStats;

/// Aggregate statistics of one TLS simulation.
#[derive(Debug, Clone, Default)]
pub struct TlsStats {
    /// Committed tasks.
    pub commits: u64,
    /// Task squashes (each squashed task counts once per restart).
    pub squashes: u64,
    /// Squashes caused purely by signature aliasing (Table 6 "Sq (%)").
    pub false_squashes: u64,
    /// Sum of committed tasks' read-set sizes, in words.
    pub rd_set_words: u64,
    /// Sum of committed tasks' write-set sizes, in words.
    pub wr_set_words: u64,
    /// Sum of dependence-set sizes over truly conflicting squashes, words.
    pub dep_set_words: u64,
    /// Squashes contributing to `dep_set_words`.
    pub dep_samples: u64,
    /// Lines invalidated at commit due to aliasing only (Table 6
    /// "False Inv/Com").
    pub false_invalidations: u64,
    /// Non-speculative dirty lines written back for the Set Restriction
    /// (Table 6 "Safe WB/Tsk").
    pub safe_writebacks: u64,
    /// Write–write set conflicts against a preempted version's dirty lines
    /// (Table 6 "Wr-Wr Cnf/1k Tasks").
    pub wr_wr_set_conflicts: u64,
    /// Partially updated lines merged word-wise at commits (§4.4).
    pub line_merges: u64,
    /// Clean lines invalidated at spawns by Partial Overlap (§6.3).
    pub spawn_invalidations: u64,
    /// Finish time of the parallel run, in cycles.
    pub cycles: u64,
    /// Machine-wide interconnect traffic.
    pub bw: BandwidthStats,
    /// Commit-arbitration denials retried with backoff (chaos runs).
    pub commit_retries: u64,
    /// Tasks escalated to head-serialized (non-speculative) execution.
    pub escalations: u64,
    /// Commits completed by escalated tasks running at the head.
    pub serialized_commits: u64,
    /// Individual invariant checks performed by the auditor.
    pub audit_checks: u64,
    /// Injected-fault accounting for chaos runs.
    pub chaos: FaultStats,
    /// Invariant violations the auditor observed (empty on a healthy run).
    pub violations: Vec<InvariantViolation>,
    /// Liveness-engine counters (all zero unless the engine was armed).
    pub liveness: LiveStats,
    /// Forward-progress violations the liveness watchdog emitted.
    pub liveness_violations: Vec<LivenessViolation>,
    /// Committed history in commit order: one [`CommitEvent`] per task,
    /// used by the cross-runtime conformance check.
    pub history: Vec<CommitEvent>,
}

impl TlsStats {
    /// Accumulates another run's statistics (used to average experiments
    /// over several workload seeds).
    pub fn merge(&mut self, other: &TlsStats) {
        self.commits += other.commits;
        self.squashes += other.squashes;
        self.false_squashes += other.false_squashes;
        self.rd_set_words += other.rd_set_words;
        self.wr_set_words += other.wr_set_words;
        self.dep_set_words += other.dep_set_words;
        self.dep_samples += other.dep_samples;
        self.false_invalidations += other.false_invalidations;
        self.safe_writebacks += other.safe_writebacks;
        self.wr_wr_set_conflicts += other.wr_wr_set_conflicts;
        self.line_merges += other.line_merges;
        self.spawn_invalidations += other.spawn_invalidations;
        self.cycles += other.cycles;
        self.bw += other.bw;
        self.commit_retries += other.commit_retries;
        self.escalations += other.escalations;
        self.serialized_commits += other.serialized_commits;
        self.audit_checks += other.audit_checks;
        self.chaos.merge(&other.chaos);
        self.violations.extend(other.violations.iter().cloned());
        self.liveness.merge(&other.liveness);
        self.liveness_violations.extend(other.liveness_violations.iter().cloned());
        self.history.extend(other.history.iter().copied());
    }

    /// Mean committed read-set size in words.
    pub fn avg_rd_set(&self) -> f64 {
        ratio(self.rd_set_words, self.commits)
    }

    /// Mean committed write-set size in words.
    pub fn avg_wr_set(&self) -> f64 {
        ratio(self.wr_set_words, self.commits)
    }

    /// Mean dependence-set size in words over truly conflicting squashes.
    pub fn avg_dep_set(&self) -> f64 {
        ratio(self.dep_set_words, self.dep_samples)
    }

    /// Fraction of squashes caused by aliasing (0..1).
    pub fn false_squash_frac(&self) -> f64 {
        ratio(self.false_squashes, self.squashes)
    }

    /// False invalidations per commit.
    pub fn false_inv_per_commit(&self) -> f64 {
        ratio(self.false_invalidations, self.commits)
    }

    /// Safe writebacks per committed task.
    pub fn safe_wb_per_task(&self) -> f64 {
        ratio(self.safe_writebacks, self.commits)
    }

    /// Write–write set conflicts per 1000 tasks.
    pub fn wr_wr_per_1k_tasks(&self) -> f64 {
        1000.0 * ratio(self.wr_wr_set_conflicts, self.commits)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_denominators_are_safe() {
        let s = TlsStats::default();
        assert_eq!(s.avg_rd_set(), 0.0);
        assert_eq!(s.wr_wr_per_1k_tasks(), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let s = TlsStats {
            commits: 1000,
            rd_set_words: 39_600,
            wr_set_words: 10_300,
            squashes: 50,
            false_squashes: 5,
            wr_wr_set_conflicts: 4,
            safe_writebacks: 4300,
            ..TlsStats::default()
        };
        assert!((s.avg_rd_set() - 39.6).abs() < 1e-9);
        assert!((s.avg_wr_set() - 10.3).abs() < 1e-9);
        assert!((s.false_squash_frac() - 0.1).abs() < 1e-9);
        assert!((s.wr_wr_per_1k_tasks() - 4.0).abs() < 1e-9);
        assert!((s.safe_wb_per_task() - 4.3).abs() < 1e-9);
    }
}
