//! Property-based tests of the cache model: capacity, inclusion of
//! recently-used lines, state transitions and eviction accounting.

use bulk_mem::{Addr, Cache, CacheGeometry, LineState, StoreOutcome};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Load(u32),
    Store(u32),
    Invalidate(u32),
    MarkClean(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..4096).prop_map(Op::Load),
            (0u32..4096).prop_map(Op::Store),
            (0u32..4096).prop_map(Op::Invalidate),
            (0u32..4096).prop_map(Op::MarkClean),
        ],
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sets never exceed associativity; every line sits in its home set;
    /// evictions only happen from full sets.
    #[test]
    fn capacity_and_placement(ops in arb_ops()) {
        let geom = CacheGeometry::tm_l1();
        let mut cache = Cache::new(geom);
        for op in ops {
            match op {
                Op::Load(l) => {
                    let line = Addr::new(l * 64).line(64);
                    let (_, _evicted) = cache.load(line);
                    prop_assert!(cache.contains(line));
                }
                Op::Store(l) => {
                    let line = Addr::new(l * 64).line(64);
                    cache.store(line);
                    prop_assert_eq!(cache.state_of(line), Some(LineState::Dirty));
                }
                Op::Invalidate(l) => {
                    let line = Addr::new(l * 64).line(64);
                    cache.invalidate(line);
                    prop_assert!(!cache.contains(line));
                }
                Op::MarkClean(l) => {
                    let line = Addr::new(l * 64).line(64);
                    if cache.contains(line) {
                        cache.mark_clean(line);
                        prop_assert_eq!(cache.state_of(line), Some(LineState::Clean));
                    }
                }
            }
            for set in 0..geom.num_sets() {
                let lines = cache.lines_in_set(set);
                prop_assert!(lines.len() <= geom.assoc() as usize);
                for l in lines {
                    prop_assert_eq!(geom.set_of_line(l.addr()), set);
                }
            }
        }
        prop_assert!(cache.len() <= (geom.num_sets() * geom.assoc()) as usize);
    }

    /// A just-accessed line is never the next victim of its set (true LRU).
    #[test]
    fn lru_protects_most_recent(fill in prop::collection::vec(0u32..64, 1..40)) {
        let geom = CacheGeometry::new(16 * 1024, 4, 64);
        let mut cache = Cache::new(geom);
        let mut last: Option<bulk_mem::LineAddr> = None;
        for (i, f) in fill.iter().enumerate() {
            // All lines map to set 0 (multiples of num_sets).
            let line = bulk_mem::LineAddr::new(f * geom.num_sets() + i as u32 * geom.num_sets());
            let (_, evicted) = cache.load(line);
            if let (Some(prev), Some(e)) = (last, evicted) {
                prop_assert_ne!(e.addr, prev, "evicted the most recently used line");
            }
            last = Some(line);
        }
    }

    /// Store outcomes faithfully report the prior state.
    #[test]
    fn store_outcome_matches_state(lines in prop::collection::vec(0u32..64, 0..200)) {
        let geom = CacheGeometry::tm_l1();
        let mut cache = Cache::new(geom);
        for l in lines {
            let line = bulk_mem::LineAddr::new(l);
            let before = cache.state_of(line);
            let outcome = cache.store(line);
            match before {
                Some(LineState::Dirty) => prop_assert_eq!(outcome, StoreOutcome::HitDirty),
                Some(LineState::Clean) => prop_assert_eq!(outcome, StoreOutcome::HitUpgrade),
                None => prop_assert!(matches!(outcome, StoreOutcome::Miss(_))),
            }
            prop_assert_eq!(cache.state_of(line), Some(LineState::Dirty));
        }
    }

    /// Dirty victims are reported exactly when a dirty line leaves.
    #[test]
    fn dirty_eviction_reporting(stores in prop::collection::vec(0u32..32, 0..100)) {
        let geom = CacheGeometry::new(16 * 1024, 4, 64); // 64 sets
        let mut cache = Cache::new(geom);
        let mut dirty_in: std::collections::HashSet<u32> = Default::default();
        for s in stores {
            let line = bulk_mem::LineAddr::new(s * geom.num_sets()); // all set 0
            match cache.store(line) {
                StoreOutcome::Miss(Some(victim))
                    if victim.state == LineState::Dirty => {
                        prop_assert!(dirty_in.remove(&victim.addr.raw()));
                    }
                StoreOutcome::Miss(None) => {}
                _ => {}
            }
            dirty_in.insert(line.raw());
            // The cache's view of dirty lines in set 0 matches the model.
            let cache_dirty: std::collections::HashSet<u32> =
                cache.dirty_lines_in_set(0).map(|l| l.raw()).collect();
            prop_assert_eq!(&cache_dirty, &dirty_in);
        }
    }
}
