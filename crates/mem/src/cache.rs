//! A set-associative, write-back data cache with true-LRU replacement.
//!
//! A deliberate design point, mirroring the paper (§4.5): the cache carries
//! **no speculative metadata** — no speculative bits, no version IDs, no
//! per-word access bits. All speculation bookkeeping lives outside, in the
//! Bulk Disambiguation Module. The cache only knows line addresses and a
//! clean/dirty state.
//!
//! Data values are not stored: the simulators track architectural values
//! separately where an experiment needs them; the cache models presence,
//! dirtiness, placement and replacement.

use crate::{CacheGeometry, LineAddr};

/// Coherence-visible state of a resident line. Invalid lines are simply not
/// resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Resident and consistent with memory (shared/exclusive-clean).
    Clean,
    /// Resident and modified with respect to memory.
    Dirty,
}

/// A resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    addr: LineAddr,
    state: LineState,
    lru: u64,
}

impl CacheLine {
    /// The line's address.
    #[inline]
    pub fn addr(&self) -> LineAddr {
        self.addr
    }

    /// The line's clean/dirty state.
    #[inline]
    pub fn state(&self) -> LineState {
        self.state
    }

    /// Whether the line is dirty.
    #[inline]
    pub fn is_dirty(&self) -> bool {
        self.state == LineState::Dirty
    }
}

/// A line displaced by a fill. Dirty victims must be written back by the
/// caller (and accounted as writeback bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Address of the displaced line.
    pub addr: LineAddr,
    /// State the line had when displaced.
    pub state: LineState,
}

/// Result of a [`Cache::store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The line was already resident and dirty.
    HitDirty,
    /// The line was resident clean and has been upgraded to dirty (a
    /// coherence upgrade message is due).
    HitUpgrade,
    /// The line was not resident; it has been filled dirty, possibly
    /// displacing a victim.
    Miss(Option<EvictedLine>),
}

/// A set-associative write-back cache (see module docs).
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeometry,
    sets: Vec<Vec<CacheLine>>,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache of the given shape.
    pub fn new(geom: CacheGeometry) -> Self {
        Cache {
            sets: vec![Vec::with_capacity(geom.assoc() as usize); geom.num_sets() as usize],
            geom,
            tick: 0,
        }
    }

    /// The cache's shape.
    #[inline]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_index(&self, line: LineAddr) -> usize {
        self.geom.set_of_line(line) as usize
    }

    /// Whether `line` is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.sets[self.set_index(line)].iter().any(|l| l.addr == line)
    }

    /// The state of `line`, or `None` if not resident.
    pub fn state_of(&self, line: LineAddr) -> Option<LineState> {
        self.sets[self.set_index(line)]
            .iter()
            .find(|l| l.addr == line)
            .map(|l| l.state)
    }

    /// Performs a load of `line`. Returns `true` on hit. On a miss the line
    /// is filled clean and the displaced victim, if any, is returned through
    /// `evicted`.
    pub fn load(&mut self, line: LineAddr) -> (bool, Option<EvictedLine>) {
        if self.touch(line) {
            (true, None)
        } else {
            (false, self.fill(line, LineState::Clean))
        }
    }

    /// Performs a store to `line` (write-allocate).
    pub fn store(&mut self, line: LineAddr) -> StoreOutcome {
        let set = self.set_index(line);
        self.tick += 1;
        let tick = self.tick;
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.addr == line) {
            l.lru = tick;
            return match l.state {
                LineState::Dirty => StoreOutcome::HitDirty,
                LineState::Clean => {
                    l.state = LineState::Dirty;
                    StoreOutcome::HitUpgrade
                }
            };
        }
        StoreOutcome::Miss(self.fill(line, LineState::Dirty))
    }

    /// Updates LRU state for `line` if resident; returns whether it was.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        self.tick += 1;
        let tick = self.tick;
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.addr == line) {
            l.lru = tick;
            true
        } else {
            false
        }
    }

    /// Inserts `line` clean (as after a fill from memory), returning a
    /// displaced victim if the set was full. If the line was already
    /// resident its state is left unchanged.
    pub fn fill_clean(&mut self, line: LineAddr) -> Option<EvictedLine> {
        if self.touch(line) {
            return None;
        }
        self.fill(line, LineState::Clean)
    }

    /// Inserts `line` dirty, returning a displaced victim if the set was
    /// full. If the line was already resident it is marked dirty.
    pub fn fill_dirty(&mut self, line: LineAddr) -> Option<EvictedLine> {
        if self.touch(line) {
            self.mark_dirty(line);
            return None;
        }
        self.fill(line, LineState::Dirty)
    }

    fn fill(&mut self, line: LineAddr, state: LineState) -> Option<EvictedLine> {
        let assoc = self.geom.assoc() as usize;
        let set_idx = self.set_index(line);
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        debug_assert!(!set.iter().any(|l| l.addr == line));
        let evicted = if set.len() == assoc {
            let (victim, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("non-empty set");
            let v = set.swap_remove(victim);
            Some(EvictedLine { addr: v.addr, state: v.state })
        } else {
            None
        };
        set.push(CacheLine { addr: line, state, lru: tick });
        evicted
    }

    /// Marks a resident line dirty.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) {
        let set = self.set_index(line);
        let l = self.sets[set]
            .iter_mut()
            .find(|l| l.addr == line)
            .expect("mark_dirty on non-resident line");
        l.state = LineState::Dirty;
    }

    /// Marks a resident line clean (as after a writeback that keeps the line
    /// resident, which is what the Set Restriction's "safe writebacks" do).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn mark_clean(&mut self, line: LineAddr) {
        let set = self.set_index(line);
        let l = self.sets[set]
            .iter_mut()
            .find(|l| l.addr == line)
            .expect("mark_clean on non-resident line");
        l.state = LineState::Clean;
    }

    /// Removes `line`, returning its prior state if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineState> {
        let set = self.set_index(line);
        let pos = self.sets[set].iter().position(|l| l.addr == line)?;
        Some(self.sets[set].swap_remove(pos).state)
    }

    /// Removes every line, leaving the cache empty.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// The resident lines of cache set `set`, in no particular order.
    ///
    /// This is the "read all valid line addresses of the set" step of the
    /// paper's signature expansion (Fig. 4).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn lines_in_set(&self, set: u32) -> &[CacheLine] {
        &self.sets[set as usize]
    }

    /// Whether cache set `set` holds at least one dirty line.
    pub fn set_has_dirty(&self, set: u32) -> bool {
        self.sets[set as usize].iter().any(|l| l.is_dirty())
    }

    /// The dirty lines of cache set `set`.
    pub fn dirty_lines_in_set(&self, set: u32) -> impl Iterator<Item = LineAddr> + '_ {
        self.sets[set as usize]
            .iter()
            .filter(|l| l.is_dirty())
            .map(|l| l.addr)
    }

    /// Iterates over every resident line.
    pub fn iter(&self) -> impl Iterator<Item = &CacheLine> {
        self.sets.iter().flat_map(|s| s.iter())
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether no line is resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(|s| s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 64-byte lines.
        Cache::new(CacheGeometry::new(256, 2, 64))
    }

    #[test]
    fn load_miss_then_hit() {
        let mut c = tiny();
        let l = LineAddr::new(4);
        let (hit, ev) = c.load(l);
        assert!(!hit);
        assert!(ev.is_none());
        let (hit, _) = c.load(l);
        assert!(hit);
        assert_eq!(c.state_of(l), Some(LineState::Clean));
    }

    #[test]
    fn store_allocates_dirty() {
        let mut c = tiny();
        let l = LineAddr::new(2);
        assert_eq!(c.store(l), StoreOutcome::Miss(None));
        assert_eq!(c.state_of(l), Some(LineState::Dirty));
        assert_eq!(c.store(l), StoreOutcome::HitDirty);
    }

    #[test]
    fn store_upgrades_clean_line() {
        let mut c = tiny();
        let l = LineAddr::new(2);
        c.load(l);
        assert_eq!(c.store(l), StoreOutcome::HitUpgrade);
        assert_eq!(c.state_of(l), Some(LineState::Dirty));
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even raw line addrs).
        let (a, b, d) = (LineAddr::new(0), LineAddr::new(2), LineAddr::new(4));
        c.load(a);
        c.load(b);
        c.load(a); // refresh a; b is now LRU
        let (_, ev) = c.load(d);
        assert_eq!(ev, Some(EvictedLine { addr: b, state: LineState::Clean }));
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn dirty_victim_reported_dirty() {
        let mut c = tiny();
        let (a, b, d) = (LineAddr::new(0), LineAddr::new(2), LineAddr::new(4));
        c.store(a);
        c.load(b);
        c.touch(b); // a is LRU
        let (_, ev) = c.load(d);
        assert_eq!(ev, Some(EvictedLine { addr: a, state: LineState::Dirty }));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        let l = LineAddr::new(8);
        c.store(l);
        assert_eq!(c.invalidate(l), Some(LineState::Dirty));
        assert_eq!(c.invalidate(l), None);
        assert!(!c.contains(l));
    }

    #[test]
    fn set_queries() {
        let mut c = tiny();
        let even = LineAddr::new(6); // set 0
        let odd = LineAddr::new(7); // set 1
        c.store(even);
        c.load(odd);
        assert!(c.set_has_dirty(0));
        assert!(!c.set_has_dirty(1));
        assert_eq!(c.dirty_lines_in_set(0).collect::<Vec<_>>(), vec![even]);
        assert_eq!(c.lines_in_set(1).len(), 1);
    }

    #[test]
    fn mark_clean_then_dirty() {
        let mut c = tiny();
        let l = LineAddr::new(1);
        c.store(l);
        c.mark_clean(l);
        assert_eq!(c.state_of(l), Some(LineState::Clean));
        c.mark_dirty(l);
        assert_eq!(c.state_of(l), Some(LineState::Dirty));
    }

    #[test]
    fn clear_empties() {
        let mut c = tiny();
        c.store(LineAddr::new(1));
        c.load(LineAddr::new(2));
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn fill_dirty_marks_existing_resident_line() {
        let mut c = tiny();
        let l = LineAddr::new(2);
        c.load(l);
        assert!(c.fill_dirty(l).is_none());
        assert_eq!(c.state_of(l), Some(LineState::Dirty));
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn mark_dirty_missing_panics() {
        tiny().mark_dirty(LineAddr::new(9));
    }
}
