//! Interconnect traffic classes and bandwidth accounting.
//!
//! The paper's Figure 13 breaks total TM bandwidth into five classes:
//! invalidations (`Inv`), other coherence messages such as upgrades and
//! downgrades (`Coh`), accesses to the unbounded overflow area (`UB`),
//! writebacks (`WB`) and line fills (`Fill`). Commit traffic travels as
//! invalidation-class traffic (the paper: "Most of the Inv bandwidth usage
//! in Lazy and Bulk is due to the commit operations"), but is *also*
//! tracked separately here so Figure 14 (commit bandwidth of Bulk vs Lazy)
//! can be regenerated.

use std::fmt;
use std::ops::{Add, AddAssign};

/// A class of interconnect message, as broken down in Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Invalidation traffic, including commit broadcasts.
    Inv,
    /// Other coherence traffic: upgrades, downgrades, nacks.
    Coh,
    /// Accesses to the unbounded memory overflow area.
    Ub,
    /// Writebacks of dirty lines.
    Wb,
    /// Line fills.
    Fill,
}

impl MsgClass {
    /// All classes, in the order Figure 13 stacks them.
    pub const ALL: [MsgClass; 5] =
        [MsgClass::Inv, MsgClass::Coh, MsgClass::Ub, MsgClass::Wb, MsgClass::Fill];

    fn index(self) -> usize {
        match self {
            MsgClass::Inv => 0,
            MsgClass::Coh => 1,
            MsgClass::Ub => 2,
            MsgClass::Wb => 3,
            MsgClass::Fill => 4,
        }
    }
}

impl fmt::Display for MsgClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgClass::Inv => "Inv",
            MsgClass::Coh => "Coh",
            MsgClass::Ub => "UB",
            MsgClass::Wb => "WB",
            MsgClass::Fill => "Fill",
        };
        f.write_str(s)
    }
}

/// Sizes, in bytes, of the messages the simulated machine exchanges.
///
/// These follow common snoopy-bus conventions: a header plus either an
/// address or a full line of data. Commit messages carry either an
/// enumeration of line addresses (Lazy) or an RLE-compressed signature
/// (Bulk); those payload sizes are computed by the runtimes and passed to
/// [`BandwidthStats::record_commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgSizes {
    /// Bytes of an address-only message (header + address).
    pub addr_msg: u64,
    /// Bytes of a data-carrying message (header + one line).
    pub line_msg: u64,
    /// Bytes of the fixed header on variable-payload messages (commits).
    pub header: u64,
}

impl MsgSizes {
    /// Default sizes for a 64-byte-line machine: 8-byte address messages,
    /// 72-byte line messages, 8-byte headers.
    pub fn for_line_bytes(line_bytes: u32) -> Self {
        MsgSizes { addr_msg: 8, line_msg: 8 + line_bytes as u64, header: 8 }
    }
}

impl Default for MsgSizes {
    fn default() -> Self {
        MsgSizes::for_line_bytes(64)
    }
}

/// Accumulated interconnect traffic, by class, plus separately tracked
/// commit-payload bytes (for Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BandwidthStats {
    bytes: [u64; 5],
    commit_bytes: u64,
    commit_count: u64,
}

impl BandwidthStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        BandwidthStats::default()
    }

    /// Records `bytes` of traffic of the given class.
    pub fn record(&mut self, class: MsgClass, bytes: u64) {
        self.bytes[class.index()] += bytes;
    }

    /// Records a commit broadcast of `payload_bytes` (plus header), which
    /// travels as `Inv`-class traffic and is also tallied as commit
    /// bandwidth.
    pub fn record_commit(&mut self, payload_bytes: u64, sizes: &MsgSizes) {
        let total = payload_bytes + sizes.header;
        self.record(MsgClass::Inv, total);
        self.commit_bytes += total;
        self.commit_count += 1;
    }

    /// Bytes recorded for a class.
    pub fn bytes(&self, class: MsgClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total bytes across all classes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes of commit broadcasts (subset of `Inv`).
    pub fn commit_bytes(&self) -> u64 {
        self.commit_bytes
    }

    /// Number of commit broadcasts recorded.
    pub fn commit_count(&self) -> u64 {
        self.commit_count
    }

    /// Per-class fractions of the total, in [`MsgClass::ALL`] order.
    /// Returns zeros if no traffic was recorded.
    pub fn breakdown(&self) -> [f64; 5] {
        let total = self.total();
        if total == 0 {
            return [0.0; 5];
        }
        let mut out = [0.0; 5];
        for (i, b) in self.bytes.iter().enumerate() {
            out[i] = *b as f64 / total as f64;
        }
        out
    }
}

impl Add for BandwidthStats {
    type Output = BandwidthStats;

    fn add(mut self, rhs: BandwidthStats) -> BandwidthStats {
        self += rhs;
        self
    }
}

impl AddAssign for BandwidthStats {
    fn add_assign(&mut self, rhs: BandwidthStats) {
        for i in 0..self.bytes.len() {
            self.bytes[i] += rhs.bytes[i];
        }
        self.commit_bytes += rhs.commit_bytes;
        self.commit_count += rhs.commit_count;
    }
}

impl fmt::Display for BandwidthStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in MsgClass::ALL {
            write!(f, "{}={}B ", class, self.bytes(class))?;
        }
        write!(f, "total={}B commit={}B", self.total(), self.commit_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = BandwidthStats::new();
        s.record(MsgClass::Fill, 72);
        s.record(MsgClass::Fill, 72);
        s.record(MsgClass::Wb, 72);
        assert_eq!(s.bytes(MsgClass::Fill), 144);
        assert_eq!(s.bytes(MsgClass::Wb), 72);
        assert_eq!(s.bytes(MsgClass::Inv), 0);
        assert_eq!(s.total(), 216);
    }

    #[test]
    fn commits_count_as_inv() {
        let mut s = BandwidthStats::new();
        let sizes = MsgSizes::default();
        s.record_commit(100, &sizes);
        assert_eq!(s.bytes(MsgClass::Inv), 108);
        assert_eq!(s.commit_bytes(), 108);
        assert_eq!(s.commit_count(), 1);
        assert_eq!(s.total(), 108);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let mut s = BandwidthStats::new();
        s.record(MsgClass::Inv, 10);
        s.record(MsgClass::Coh, 30);
        s.record(MsgClass::Ub, 20);
        s.record(MsgClass::Wb, 15);
        s.record(MsgClass::Fill, 25);
        let sum: f64 = s.breakdown().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        assert_eq!(BandwidthStats::new().breakdown(), [0.0; 5]);
    }

    #[test]
    fn add_accumulates() {
        let mut a = BandwidthStats::new();
        a.record(MsgClass::Fill, 5);
        let mut b = BandwidthStats::new();
        b.record(MsgClass::Fill, 7);
        b.record_commit(1, &MsgSizes::default());
        let c = a + b;
        assert_eq!(c.bytes(MsgClass::Fill), 12);
        assert_eq!(c.commit_count(), 1);
    }

    #[test]
    fn default_sizes_follow_line_bytes() {
        let s = MsgSizes::for_line_bytes(64);
        assert_eq!(s.line_msg, 72);
        assert_eq!(MsgSizes::default(), s);
    }

    #[test]
    fn display_contains_all_classes() {
        let s = BandwidthStats::new();
        let d = format!("{s}");
        for c in ["Inv", "Coh", "UB", "WB", "Fill"] {
            assert!(d.contains(c), "{d} missing {c}");
        }
    }
}
