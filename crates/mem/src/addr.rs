//! Strongly typed memory addresses.
//!
//! The paper uses a 32-bit byte address space; signatures encode either
//! *line* addresses (26 bits with 64-byte lines, used for TM) or *word*
//! addresses (30 bits, used for TLS) — see Table 5. The newtypes here keep
//! the three interpretations from being confused ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// A byte address in the simulated 32-bit physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u32);

impl Addr {
    /// Creates a byte address.
    ///
    /// ```
    /// use bulk_mem::Addr;
    /// let a = Addr::new(0x40);
    /// assert_eq!(a.raw(), 0x40);
    /// ```
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Addr(raw)
    }

    /// Returns the raw 32-bit byte address.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the address of the 4-byte word containing this byte.
    ///
    /// ```
    /// use bulk_mem::Addr;
    /// assert_eq!(Addr::new(0x47).word().raw(), 0x11);
    /// ```
    #[inline]
    pub const fn word(self) -> WordAddr {
        WordAddr(self.0 >> 2)
    }

    /// Returns the address of the cache line containing this byte, for lines
    /// of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_bytes` is not a power of two.
    #[inline]
    pub fn line(self, line_bytes: u32) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }
}

impl From<u32> for Addr {
    fn from(raw: u32) -> Self {
        Addr(raw)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// The address of a 4-byte word: a byte address shifted right by 2.
///
/// TLS signatures in the paper encode word addresses so that two tasks
/// writing different words of one line do not conflict (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordAddr(u32);

impl WordAddr {
    /// Creates a word address from its raw shifted form.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        WordAddr(raw)
    }

    /// Returns the raw (already shifted) word address.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the first byte address of this word.
    #[inline]
    pub const fn to_addr(self) -> Addr {
        Addr(self.0 << 2)
    }

    /// Returns the line containing this word, for lines of `line_bytes`.
    #[inline]
    pub fn line(self, line_bytes: u32) -> LineAddr {
        self.to_addr().line(line_bytes)
    }

    /// Returns this word's index within its line (0-based).
    ///
    /// ```
    /// use bulk_mem::Addr;
    /// // Word 5 of a 64-byte (16-word) line.
    /// let w = Addr::new(64 + 5 * 4).word();
    /// assert_eq!(w.index_in_line(64), 5);
    /// ```
    #[inline]
    pub fn index_in_line(self, line_bytes: u32) -> u32 {
        self.0 & (line_bytes / 4 - 1)
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{:#09x}", self.0)
    }
}

/// The address of a cache line: a byte address shifted right by
/// `log2(line_bytes)`.
///
/// TM signatures in the paper encode line addresses (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u32);

impl LineAddr {
    /// Creates a line address from its raw shifted form.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw (already shifted) line address.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the first byte address of this line.
    #[inline]
    pub fn to_addr(self, line_bytes: u32) -> Addr {
        Addr(self.0 << line_bytes.trailing_zeros())
    }

    /// Returns the `i`-th word of this line.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i` is not within the line.
    #[inline]
    pub fn word(self, line_bytes: u32, i: u32) -> WordAddr {
        debug_assert!(i < line_bytes / 4);
        WordAddr((self.0 << (line_bytes.trailing_zeros() - 2)) | i)
    }

    /// Iterates over all words of this line.
    pub fn words(self, line_bytes: u32) -> impl Iterator<Item = WordAddr> {
        (0..line_bytes / 4).map(move |i| self.word(line_bytes, i))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#09x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_of_addr_strips_low_bits() {
        assert_eq!(Addr::new(0x0).word(), WordAddr::new(0));
        assert_eq!(Addr::new(0x3).word(), WordAddr::new(0));
        assert_eq!(Addr::new(0x4).word(), WordAddr::new(1));
        assert_eq!(Addr::new(0xffff_ffff).word(), WordAddr::new(0x3fff_ffff));
    }

    #[test]
    fn line_of_addr_uses_line_size() {
        assert_eq!(Addr::new(0x7f).line(64), LineAddr::new(1));
        assert_eq!(Addr::new(0x80).line(64), LineAddr::new(2));
        assert_eq!(Addr::new(0x80).line(32), LineAddr::new(4));
    }

    #[test]
    fn line_and_word_round_trip() {
        let a = Addr::new(0xdead_bee0);
        let l = a.line(64);
        assert_eq!(l.to_addr(64).line(64), l);
        let w = a.word();
        assert_eq!(w.to_addr().word(), w);
    }

    #[test]
    fn word_index_in_line() {
        let l = LineAddr::new(7);
        for i in 0..16 {
            let w = l.word(64, i);
            assert_eq!(w.index_in_line(64), i);
            assert_eq!(w.line(64), l);
        }
    }

    #[test]
    fn words_iterates_whole_line() {
        let l = LineAddr::new(3);
        let ws: Vec<_> = l.words(64).collect();
        assert_eq!(ws.len(), 16);
        assert!(ws.iter().all(|w| w.line(64) == l));
        // All distinct.
        let mut d = ws.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 16);
    }

    #[test]
    fn display_formats_are_nonempty_and_distinct() {
        let a = Addr::new(0x40);
        assert_eq!(format!("{a}"), "0x00000040");
        assert!(format!("{}", a.word()).starts_with('W'));
        assert!(format!("{}", a.line(64)).starts_with('L'));
    }

    #[test]
    fn addr_from_u32() {
        let a: Addr = 5u32.into();
        assert_eq!(a.raw(), 5);
    }
}
