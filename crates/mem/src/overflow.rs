//! The per-thread memory overflow area of the paper's §6.2.2.
//!
//! When a speculative thread's dirty lines are evicted from the cache they
//! move to an *overflow area* in memory. Conventional lazy schemes must
//! consult this area on every disambiguation; Bulk never does (signatures
//! are the sole disambiguation record) and additionally filters ordinary
//! misses with a signature membership test before touching the area. The
//! paper's Table 7 "Overflow Accesses Bulk/Lazy" column measures exactly
//! this difference, so the model counts accesses.

use std::collections::HashSet;

use bulk_obs::OverflowObs;

use crate::LineAddr;

/// A per-thread overflow area holding speculative dirty lines evicted from
/// the cache, with access counting.
#[derive(Debug, Clone, Default)]
pub struct OverflowArea {
    lines: HashSet<LineAddr>,
    accesses: u64,
    obs: Option<OverflowObs>,
}

impl OverflowArea {
    /// Creates an empty overflow area.
    pub fn new() -> Self {
        OverflowArea::default()
    }

    /// Attaches pre-registered observability counters; every subsequent
    /// spill/lookup/walk is mirrored into them.
    pub fn attach_obs(&mut self, obs: OverflowObs) {
        self.obs = Some(obs);
    }

    /// Moves an evicted speculative dirty line into the area. The spill
    /// itself is a cache writeback, not a consultation of the area, so it
    /// does not count as an access.
    pub fn spill(&mut self, line: LineAddr) {
        self.lines.insert(line);
        if let Some(obs) = &self.obs {
            obs.spills.inc();
            obs.resident_max.record_max(self.lines.len() as u64);
        }
    }

    /// Looks up whether `line` is held here. Counts as one access.
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        self.accesses += 1;
        let hit = self.lines.contains(&line);
        if let Some(obs) = &self.obs {
            obs.lookups.inc();
            if hit {
                obs.hits.inc();
            }
        }
        hit
    }

    /// Whether `line` is held here, **without** counting an access. This is
    /// what an oracle (or a scheme that keeps separate exact metadata) would
    /// see; used by tests.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.lines.contains(&line)
    }

    /// Removes `line` from the area if present, counting one access.
    /// Returns whether it was present.
    pub fn reclaim(&mut self, line: LineAddr) -> bool {
        self.accesses += 1;
        self.lines.remove(&line)
    }

    /// Walks the whole area (as a conventional lazy scheme does when
    /// disambiguating a commit against overflowed addresses). Counts one
    /// access per held line, and returns the lines intersecting `probe`.
    pub fn disambiguate_walk<'a>(
        &mut self,
        probe: impl IntoIterator<Item = &'a LineAddr>,
    ) -> Vec<LineAddr> {
        self.accesses += self.lines.len() as u64;
        if let Some(obs) = &self.obs {
            obs.walked_entries.add(self.lines.len() as u64);
        }
        let probe: HashSet<&LineAddr> = probe.into_iter().collect();
        self.lines
            .iter()
            .filter(|l| probe.contains(l))
            .copied()
            .collect()
    }

    /// Deallocates everything. Bulk discards the area in one step
    /// (`walk_entries = false`, one access if anything was held); a
    /// conventional scheme walks the entries to fold them into memory
    /// (`walk_entries = true`, one access per line).
    pub fn deallocate(&mut self, walk_entries: bool) {
        if !self.lines.is_empty() {
            self.accesses += if walk_entries { self.lines.len() as u64 } else { 1 };
            if walk_entries {
                if let Some(obs) = &self.obs {
                    obs.walked_entries.add(self.lines.len() as u64);
                }
            }
        }
        self.lines.clear();
    }

    /// Drops the area without any memory traffic — what a Bulk commit
    /// does: the spilled lines are already part of memory, so the area is
    /// simply forgotten (§6.2.2).
    pub fn discard(&mut self) {
        self.lines.clear();
    }

    /// Sorted snapshot of the resident lines, **without** counting an
    /// access: the checkpoint machinery reads the area's content the way
    /// the paper's context-switch save does — as part of the state dump,
    /// not as a disambiguation consultation. Sorted so two snapshots of
    /// identical state compare equal.
    pub fn snapshot_lines(&self) -> Vec<LineAddr> {
        let mut lines: Vec<LineAddr> = self.lines.iter().copied().collect();
        lines.sort_unstable();
        lines
    }

    /// Number of lines currently held.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the area holds no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Total accesses performed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Resets the access counter (e.g. between measurement intervals).
    pub fn reset_accesses(&mut self) {
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_and_lookup() {
        let mut o = OverflowArea::new();
        let l = LineAddr::new(42);
        assert!(!o.lookup(l));
        o.spill(l);
        assert!(o.lookup(l));
        assert_eq!(o.accesses(), 2, "spills are not consultations");
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn reclaim_removes() {
        let mut o = OverflowArea::new();
        o.spill(LineAddr::new(1));
        assert!(o.reclaim(LineAddr::new(1)));
        assert!(!o.reclaim(LineAddr::new(1)));
        assert!(o.is_empty());
    }

    #[test]
    fn walk_counts_per_line_and_intersects() {
        let mut o = OverflowArea::new();
        for i in 0..10 {
            o.spill(LineAddr::new(i));
        }
        o.reset_accesses();
        let probe = [LineAddr::new(3), LineAddr::new(100)];
        let hits = o.disambiguate_walk(probe.iter());
        assert_eq!(hits, vec![LineAddr::new(3)]);
        assert_eq!(o.accesses(), 10);
    }

    #[test]
    fn deallocate_walk_vs_discard() {
        let mut o = OverflowArea::new();
        o.spill(LineAddr::new(1));
        o.spill(LineAddr::new(2));
        o.reset_accesses();
        o.deallocate(true);
        assert_eq!(o.accesses(), 2, "conventional walk touches each entry");
        assert!(o.is_empty());

        let mut o2 = OverflowArea::new();
        o2.spill(LineAddr::new(1));
        o2.reset_accesses();
        o2.deallocate(false);
        assert_eq!(o2.accesses(), 1, "bulk discard is a single access");
        o2.deallocate(false);
        assert_eq!(o2.accesses(), 1, "empty deallocation is free");
    }

    #[test]
    fn discard_is_free() {
        let mut o = OverflowArea::new();
        o.spill(LineAddr::new(5));
        o.discard();
        assert!(o.is_empty());
        assert_eq!(o.accesses(), 0);
    }

    #[test]
    fn attached_obs_mirrors_activity() {
        let reg = bulk_obs::Registry::new();
        let mut o = OverflowArea::new();
        o.attach_obs(OverflowObs::register(&reg, "tm."));
        o.spill(LineAddr::new(1));
        o.spill(LineAddr::new(2));
        assert!(o.lookup(LineAddr::new(1)));
        assert!(!o.lookup(LineAddr::new(9)));
        o.disambiguate_walk([LineAddr::new(1)].iter());
        o.deallocate(true);
        assert_eq!(reg.counter_value("tm.overflow.spills"), 2);
        assert_eq!(reg.counter_value("tm.overflow.lookups"), 2);
        assert_eq!(reg.counter_value("tm.overflow.hits"), 1);
        assert_eq!(reg.counter_value("tm.overflow.walked_entries"), 4);
        assert_eq!(reg.gauges(), vec![("tm.overflow.resident_max".to_string(), 2)]);
    }

    #[test]
    fn snapshot_is_sorted_and_free() {
        let mut o = OverflowArea::new();
        o.spill(LineAddr::new(9));
        o.spill(LineAddr::new(1));
        o.spill(LineAddr::new(5));
        o.reset_accesses();
        assert_eq!(
            o.snapshot_lines(),
            vec![LineAddr::new(1), LineAddr::new(5), LineAddr::new(9)]
        );
        assert_eq!(o.accesses(), 0, "snapshots are state dumps, not lookups");
    }

    #[test]
    fn contains_does_not_count() {
        let mut o = OverflowArea::new();
        o.spill(LineAddr::new(9));
        o.reset_accesses();
        assert!(o.contains(LineAddr::new(9)));
        assert_eq!(o.accesses(), 0);
    }
}
