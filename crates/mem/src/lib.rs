//! Memory-system substrate for the Bulk reproduction.
//!
//! This crate provides the pieces of a multiprocessor memory system that the
//! Bulk Disambiguation architecture (Ceze et al., ISCA 2006) is layered on:
//!
//! * strongly typed addresses ([`Addr`], [`LineAddr`], [`WordAddr`]),
//! * a parameterised cache shape ([`CacheGeometry`]) matching the paper's
//!   Table 5 machines,
//! * a set-associative write-back data cache ([`Cache`]) deliberately kept
//!   free of any speculative metadata — exactly the property Bulk exploits,
//! * coherence/bandwidth accounting ([`MsgClass`], [`BandwidthStats`])
//!   matching the breakdown of the paper's Figure 13, and
//! * the per-thread memory overflow area of §6.2.2 ([`OverflowArea`]).
//!
//! # Example
//!
//! ```
//! use bulk_mem::{Addr, Cache, CacheGeometry};
//!
//! // The paper's TM L1: 32 KB, 4-way, 64 B lines (Table 5).
//! let geom = CacheGeometry::new(32 * 1024, 4, 64);
//! let mut cache = Cache::new(geom);
//! let line = Addr::new(0x1234_5678).line(geom.line_bytes());
//! assert!(!cache.contains(line));
//! cache.fill_clean(line);
//! assert!(cache.contains(line));
//! ```

#![warn(missing_docs)]

mod addr;
mod cache;
mod geometry;
mod msg;
mod overflow;

pub use addr::{Addr, LineAddr, WordAddr};
pub use cache::{Cache, CacheLine, EvictedLine, LineState, StoreOutcome};
pub use geometry::CacheGeometry;
pub use msg::{BandwidthStats, MsgClass, MsgSizes};
pub use overflow::OverflowArea;
