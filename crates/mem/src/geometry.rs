//! Cache shape parameters.

use crate::{LineAddr, WordAddr};

/// The shape of a set-associative cache: total size, associativity and line
/// size.
///
/// The two machines of the paper's Table 5 are provided as constructors:
/// [`CacheGeometry::tls_l1`] (16 KB, 4-way, 64 B) and
/// [`CacheGeometry::tm_l1`] (32 KB, 4-way, 64 B).
///
/// ```
/// use bulk_mem::CacheGeometry;
/// let g = CacheGeometry::tm_l1();
/// assert_eq!(g.num_sets(), 128);
/// assert_eq!(g.index_bits(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u32,
    assoc: u32,
    line_bytes: u32,
}

impl CacheGeometry {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, not a power of two, or if the
    /// configuration yields zero sets.
    pub fn new(size_bytes: u32, assoc: u32, line_bytes: u32) -> Self {
        assert!(size_bytes.is_power_of_two(), "cache size must be a power of two");
        assert!(assoc.is_power_of_two(), "associativity must be a power of two");
        assert!(line_bytes.is_power_of_two() && line_bytes >= 4, "line size must be a power of two >= 4");
        assert!(
            size_bytes >= assoc * line_bytes,
            "cache must hold at least one set"
        );
        CacheGeometry { size_bytes, assoc, line_bytes }
    }

    /// The paper's TLS L1: 16 KB, 4-way, 64-byte lines (Table 5).
    pub fn tls_l1() -> Self {
        CacheGeometry::new(16 * 1024, 4, 64)
    }

    /// The paper's TM L1: 32 KB, 4-way, 64-byte lines (Table 5).
    pub fn tm_l1() -> Self {
        CacheGeometry::new(32 * 1024, 4, 64)
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Number of ways per set.
    #[inline]
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of 4-byte words per line.
    #[inline]
    pub fn words_per_line(&self) -> u32 {
        self.line_bytes / 4
    }

    /// Number of cache sets.
    #[inline]
    pub fn num_sets(&self) -> u32 {
        self.size_bytes / (self.assoc * self.line_bytes)
    }

    /// Number of index bits (`log2(num_sets)`).
    #[inline]
    pub fn index_bits(&self) -> u32 {
        self.num_sets().trailing_zeros()
    }

    /// The cache set a line maps to.
    #[inline]
    pub fn set_of_line(&self, line: LineAddr) -> u32 {
        line.raw() & (self.num_sets() - 1)
    }

    /// The cache set a word maps to (the set of its line).
    #[inline]
    pub fn set_of_word(&self, word: WordAddr) -> u32 {
        self.set_of_line(word.line(self.line_bytes))
    }

    /// Bit positions, within a *line* address, that form the set index:
    /// always `0..index_bits()`.
    #[inline]
    pub fn line_index_bit_range(&self) -> std::ops::Range<u32> {
        0..self.index_bits()
    }

    /// Bit positions, within a *word* address, that form the set index:
    /// the index bits sit above the in-line word-offset bits.
    ///
    /// ```
    /// use bulk_mem::CacheGeometry;
    /// // 64-byte lines -> 16 words -> 4 offset bits; 128 sets -> 7 index bits.
    /// assert_eq!(CacheGeometry::tm_l1().word_index_bit_range(), 4..11);
    /// ```
    #[inline]
    pub fn word_index_bit_range(&self) -> std::ops::Range<u32> {
        let off = self.words_per_line().trailing_zeros();
        off..off + self.index_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    #[test]
    fn table5_machines() {
        let tls = CacheGeometry::tls_l1();
        assert_eq!(tls.num_sets(), 64);
        assert_eq!(tls.index_bits(), 6);
        assert_eq!(tls.words_per_line(), 16);
        let tm = CacheGeometry::tm_l1();
        assert_eq!(tm.num_sets(), 128);
        assert_eq!(tm.index_bits(), 7);
    }

    #[test]
    fn set_mapping_wraps() {
        let g = CacheGeometry::tm_l1();
        let l0 = LineAddr::new(0);
        let l128 = LineAddr::new(128);
        assert_eq!(g.set_of_line(l0), g.set_of_line(l128));
        assert_ne!(g.set_of_line(l0), g.set_of_line(LineAddr::new(1)));
    }

    #[test]
    fn word_and_line_agree_on_set() {
        let g = CacheGeometry::tls_l1();
        for raw in [0u32, 0x40, 0x7c, 0x1234_5678, 0xffff_ffc0] {
            let a = Addr::new(raw);
            assert_eq!(
                g.set_of_word(a.word()),
                g.set_of_line(a.line(g.line_bytes()))
            );
        }
    }

    #[test]
    fn word_index_bit_range_matches_set_mapping() {
        let g = CacheGeometry::tm_l1();
        let r = g.word_index_bit_range();
        for raw in [0u32, 0x12345678, 0xdeadbeef] {
            let w = Addr::new(raw).word();
            let idx = (w.raw() >> r.start) & ((1 << (r.end - r.start)) - 1);
            assert_eq!(idx, g.set_of_word(w));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_size() {
        CacheGeometry::new(3000, 4, 64);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn rejects_degenerate_shape() {
        CacheGeometry::new(64, 4, 64);
    }
}
