------------------------------ MODULE BulkCommit ------------------------------
(***************************************************************************)
(* Bulk commit broadcast with receiver-side dedup (paper sections 4.2 and  *)
(* 6; DESIGN.md sections 7, 9 and 12).                                     *)
(*                                                                         *)
(* A committer that wins the bus broadcasts one CommitMsg carrying its     *)
(* write signature W_C.  Every other processor must apply that W_C to its  *)
(* local speculative state EXACTLY ONCE, even when the interconnect        *)
(* duplicates the message: the receiver-side DedupFilter keyed on          *)
(* (committer, serial) drops re-deliveries.  The committed order is the    *)
(* bus-grant order, and every receiver must observe committed writes in    *)
(* an order consistent with it (serializability of the committed           *)
(* prefix).                                                                *)
(*                                                                         *)
(* This spec is the crash-free core; ArbiterFailover.tla layers arbiter    *)
(* crashes, epoch re-election and in-flight replay on top of the same      *)
(* state shape.  The executable twin of both specs is crates/mc            *)
(* (`bulk-mc`), whose explicit-state BFS explorer checks the same          *)
(* invariants at the documented bounds and certifies every                 *)
(* counterexample by replay; see specs/tla/README.md for the measured      *)
(* state-space sizes.                                                      *)
(***************************************************************************)

EXTENDS Naturals, Sequences, FiniteSets

CONSTANTS
    Procs,          \* set of processor ids, e.g. 0..2
    CommitsPerProc, \* transactions each processor commits, e.g. 1
    MaxDups         \* interconnect duplications budget, e.g. 1

ASSUME Cardinality(Procs) >= 2 /\ CommitsPerProc >= 1 /\ MaxDups >= 0

Serials == 0 .. CommitsPerProc - 1

\* A CommitMsg is identified by its ticket (committer, serial).
Msgs == Procs \X Serials

VARIABLES
    remaining,  \* [Procs -> Nat]: commits each processor still has to win
    busFree,    \* TRUE when no broadcast is in flight
    inflight,   \* set of [msg : Msgs, pending : SUBSET Procs]
    dups,       \* interconnect duplications spent so far
    applied,    \* [Procs -> Seq(Msgs)]: per-receiver applied W_C order
    granted     \* Seq(Msgs): the bus-grant (committed) order

vars == <<remaining, busFree, inflight, dups, applied, granted>>

Init ==
    /\ remaining = [p \in Procs |-> CommitsPerProc]
    /\ busFree = TRUE
    /\ inflight = {}
    /\ dups = 0
    /\ applied = [p \in Procs |-> <<>>]
    /\ granted = <<>>

(***************************************************************************)
(* Actions.  Grant models the arbiter handing the bus to one committer;   *)
(* Deliver models one receiver consuming the broadcast; Duplicate models  *)
(* the interconnect re-delivering an already-delivered copy.  A message   *)
(* retires (leaves `inflight`) when every receiver has consumed it,       *)
(* which frees the bus for the next grant.                                *)
(***************************************************************************)

Grant(p) ==
    /\ busFree
    /\ remaining[p] > 0
    /\ LET m == <<p, CommitsPerProc - remaining[p]>> IN
       /\ inflight' = inflight \cup
            {[msg |-> m, pending |-> Procs \ {p}]}
       /\ remaining' = [remaining EXCEPT ![p] = @ - 1]
       /\ busFree' = FALSE
       /\ granted' = Append(granted, m)
       /\ UNCHANGED <<dups, applied>>

Deliver(e, r) ==
    /\ e \in inflight
    /\ r \in e.pending
    \* The DedupFilter admits a ticket at most once: a (committer,
    \* serial) already in the receiver's applied sequence is dropped.
    /\ LET fresh == \A i \in 1..Len(applied[r]) : applied[r][i] /= e.msg
           e2 == [e EXCEPT !.pending = @ \ {r}]
       IN
       /\ applied' = IF fresh
                     THEN [applied EXCEPT ![r] = Append(@, e.msg)]
                     ELSE applied
       /\ inflight' = IF e2.pending = {}
                      THEN (inflight \ {e}) \* fully delivered: retire
                      ELSE (inflight \ {e}) \cup {e2}
       /\ busFree' = IF e2.pending = {} THEN TRUE ELSE busFree
       /\ UNCHANGED <<remaining, dups, granted>>

\* The interconnect re-delivers a copy to a receiver that already
\* consumed it.  The dedup filter must drop it (fresh is FALSE by
\* construction), so `applied` is unchanged; only the budget is spent.
Duplicate(e, r) ==
    /\ e \in inflight
    /\ r \in (Procs \ {e.msg[1]}) \ e.pending
    /\ dups < MaxDups
    /\ dups' = dups + 1
    /\ LET fresh == \A i \in 1..Len(applied[r]) : applied[r][i] /= e.msg
       IN applied' = IF fresh
                     THEN [applied EXCEPT ![r] = Append(@, e.msg)]
                     ELSE applied
    /\ UNCHANGED <<remaining, busFree, inflight, granted>>

Next ==
    \/ \E p \in Procs : Grant(p)
    \/ \E e \in inflight, r \in Procs : Deliver(e, r)
    \/ \E e \in inflight, r \in Procs : Duplicate(e, r)

Spec == Init /\ [][Next]_vars /\ WF_vars(Next)

(***************************************************************************)
(* Invariants — the same three the Rust explorer checks.                  *)
(***************************************************************************)

\* Exactly-once: no receiver's applied sequence contains a ticket twice.
ExactlyOnce ==
    \A p \in Procs :
        \A i, j \in 1..Len(applied[p]) :
            (i /= j) => applied[p][i] /= applied[p][j]

\* Serializability of the committed prefix: every receiver applies W_C
\* sets in a subsequence of the bus-grant order.
IsSubseqOf(s, t) ==
    \E f \in [1..Len(s) -> 1..Len(t)] :
        /\ \A i, j \in 1..Len(s) : (i < j) => f[i] < f[j]
        /\ \A i \in 1..Len(s) : t[f[i]] = s[i]

SerializableOrder ==
    \A p \in Procs : IsSubseqOf(applied[p], granted)

\* Quiescent completeness: once all commits are granted and delivered,
\* every receiver has applied every foreign commit.
Quiescent ==
    /\ \A p \in Procs : remaining[p] = 0
    /\ inflight = {}

NoLostCommit ==
    Quiescent =>
        \A p \in Procs :
            Len(applied[p]) = CommitsPerProc * (Cardinality(Procs) - 1)

\* Liveness: the protocol drains.
EventuallyQuiescent == <>Quiescent

================================================================================
