---------------------------- MODULE ArbiterFailover ----------------------------
(***************************************************************************)
(* Arbiter failover layered over the Bulk commit broadcast (DESIGN.md     *)
(* sections 9 and 12; crates/live arbiter + crates/mc model).             *)
(*                                                                         *)
(* The commit arbiter can crash while a broadcast is in flight.  The      *)
(* surviving processors re-elect: the epoch counter increments, the       *)
(* leader rotates, and the new arbiter REPLAYS every in-flight CommitMsg  *)
(* re-stamped with the new epoch (it cannot know which receivers          *)
(* already consumed the original).  Receivers therefore see the same      *)
(* (committer, serial) ticket up to 1 + crashes times; the DedupFilter    *)
(* — keyed on (committer, serial), NOT on the epoch — must admit it       *)
(* exactly once.  An epoch fence additionally drops messages stamped      *)
(* with a stale epoch; the Rust explorer's `no-fencing` mutation shows    *)
(* the fence is redundant at these bounds (bus serialization + dedup      *)
(* already discharge it), and its `stale-epoch-apply` mutation shows      *)
(* that folding the epoch INTO the dedup key is a real bug: a replay      *)
(* re-stamped to a new epoch would be admitted twice (4-step             *)
(* counterexample, see specs/tla/README.md).                              *)
(*                                                                         *)
(* Invariants: exactly-once W_C application across crashes, committed-    *)
(* order serializability, and no lost commit during re-election (every    *)
(* granted commit eventually reaches every receiver, crashes              *)
(* notwithstanding).                                                       *)
(***************************************************************************)

EXTENDS Naturals, Sequences, FiniteSets

CONSTANTS
    Procs,          \* processor ids; the arbiter leader is one of them
    CommitsPerProc, \* commits each processor performs, e.g. 1
    MaxCrashes,     \* arbiter-crash budget, e.g. 2 (allows double-crash)
    MaxDups         \* interconnect duplication budget, e.g. 1

ASSUME Cardinality(Procs) >= 2 /\ CommitsPerProc >= 1
       /\ MaxCrashes >= 0 /\ MaxDups >= 0

Serials == 0 .. CommitsPerProc - 1
Tickets == Procs \X Serials

VARIABLES
    remaining,  \* [Procs -> Nat]
    busFree,    \* no broadcast in flight
    inflight,   \* set of [msg : Tickets, epoch : Nat, pending : SUBSET Procs]
    epoch,      \* current arbiter epoch
    crashes,    \* crashes spent
    dups,       \* duplications spent
    applied,    \* [Procs -> Seq(Tickets)]
    granted     \* Seq(Tickets): bus-grant order

vars == <<remaining, busFree, inflight, epoch, crashes, dups, applied, granted>>

Init ==
    /\ remaining = [p \in Procs |-> CommitsPerProc]
    /\ busFree = TRUE
    /\ inflight = {}
    /\ epoch = 0
    /\ crashes = 0
    /\ dups = 0
    /\ applied = [p \in Procs |-> <<>>]
    /\ granted = <<>>

Grant(p) ==
    /\ busFree
    /\ remaining[p] > 0
    /\ LET t == <<p, CommitsPerProc - remaining[p]>> IN
       /\ inflight' = inflight \cup
            {[msg |-> t, epoch |-> epoch, pending |-> Procs \ {p}]}
       /\ remaining' = [remaining EXCEPT ![p] = @ - 1]
       /\ busFree' = FALSE
       /\ granted' = Append(granted, t)
       /\ UNCHANGED <<epoch, crashes, dups, applied>>

\* Receiver-side dedup on (committer, serial): the ticket is admitted
\* only if this receiver has not applied it under ANY epoch.  This is
\* exactly the property the stale-epoch-apply mutation breaks.
Fresh(r, t) == \A i \in 1..Len(applied[r]) : applied[r][i] /= t

Consume(e, r) ==
    LET e2 == [e EXCEPT !.pending = @ \ {r}] IN
    /\ applied' = IF Fresh(r, e.msg)
                  THEN [applied EXCEPT ![r] = Append(@, e.msg)]
                  ELSE applied
    /\ inflight' = IF e2.pending = {}
                   THEN inflight \ {e}
                   ELSE (inflight \ {e}) \cup {e2}
    /\ busFree' = IF e2.pending = {} THEN TRUE ELSE busFree

\* The epoch fence: receivers drop messages from a dead epoch.  The
\* fence is modelled as an enabling condition; removing it (the
\* no-fencing mutation) must not introduce a violation because dedup
\* subsumes it — the Rust explorer confirms this at the bounds below.
Deliver(e, r) ==
    /\ e \in inflight
    /\ r \in e.pending
    /\ e.epoch = epoch          \* epoch fence
    /\ Consume(e, r)
    /\ UNCHANGED <<remaining, epoch, crashes, dups, granted>>

Duplicate(e, r) ==
    /\ e \in inflight
    /\ r \in (Procs \ {e.msg[1]}) \ e.pending
    /\ e.epoch = epoch
    /\ dups < MaxDups
    /\ dups' = dups + 1
    /\ applied' = IF Fresh(r, e.msg)
                  THEN [applied EXCEPT ![r] = Append(@, e.msg)]
                  ELSE applied
    /\ UNCHANGED <<remaining, busFree, inflight, epoch, crashes, granted>>

(***************************************************************************)
(* Crash: the arbiter dies mid-protocol.  Epoch increments (the leader    *)
(* rotation is epoch MOD N and is immaterial to the invariants) and       *)
(* every in-flight message is replayed RE-STAMPED with the new epoch to   *)
(* its full original audience — the new arbiter does not know who         *)
(* already consumed the original, so the pending set resets to every     *)
(* receiver that has not yet applied the ticket... conservatively, to    *)
(* ALL foreign receivers; dedup absorbs the overshoot.  The              *)
(* replay-without-restamp mutation keeps the OLD epoch on the replay:    *)
(* the epoch fence then drops it forever and the commit is lost          *)
(* (12-step counterexample).  The skip-replay mutation drops the         *)
(* in-flight set entirely: lost commit in 10 steps.                      *)
(***************************************************************************)

Crash ==
    /\ crashes < MaxCrashes
    /\ inflight /= {}          \* a crash with nothing in flight is a no-op
    /\ crashes' = crashes + 1
    /\ epoch' = epoch + 1
    /\ inflight' = { [msg |-> e.msg,
                      epoch |-> epoch + 1,
                      pending |-> Procs \ {e.msg[1]}] : e \in inflight }
    /\ UNCHANGED <<remaining, busFree, dups, applied, granted>>

Next ==
    \/ \E p \in Procs : Grant(p)
    \/ \E e \in inflight, r \in Procs : Deliver(e, r)
    \/ \E e \in inflight, r \in Procs : Duplicate(e, r)
    \/ Crash

Spec == Init /\ [][Next]_vars /\ WF_vars(Next)

(***************************************************************************)
(* Invariants — checked by TLC and, executably, by `bulk-mc`.             *)
(***************************************************************************)

ExactlyOnce ==
    \A p \in Procs :
        \A i, j \in 1..Len(applied[p]) :
            (i /= j) => applied[p][i] /= applied[p][j]

IsSubseqOf(s, t) ==
    \E f \in [1..Len(s) -> 1..Len(t)] :
        /\ \A i, j \in 1..Len(s) : (i < j) => f[i] < f[j]
        /\ \A i \in 1..Len(s) : t[f[i]] = s[i]

SerializableOrder ==
    \A p \in Procs : IsSubseqOf(applied[p], granted)

Quiescent ==
    /\ \A p \in Procs : remaining[p] = 0
    /\ inflight = {}

\* No lost commit during re-election: at quiescence every receiver has
\* applied every foreign commit despite up to MaxCrashes failovers.
NoLostCommit ==
    Quiescent =>
        \A p \in Procs :
            Len(applied[p]) = CommitsPerProc * (Cardinality(Procs) - 1)

EventuallyQuiescent == <>Quiescent

================================================================================
