//! # bulk-repro — Bulk Disambiguation of Speculative Threads
//!
//! A from-scratch Rust reproduction of **Ceze, Tuck, Caşcaval & Torrellas,
//! "Bulk Disambiguation of Speculative Threads in Multiprocessors"
//! (ISCA 2006)**: address signatures, bulk operations, the Bulk
//! Disambiguation Module, and complete TM and TLS runtimes on a
//! discrete-event multiprocessor simulator, together with the workload
//! generators and harnesses that regenerate every table and figure of the
//! paper's evaluation.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`mem`] — memory-system substrate (addresses, caches, bandwidth),
//! * [`rng`] — deterministic in-repo PRNG + property-test harness,
//! * [`sig`] — signatures and primitive bulk operations (§3),
//! * [`bulk`] — the Bulk Disambiguation Module (§4–§6),
//! * [`sim`] — discrete-event timing simulator (Table 5 machines),
//! * [`trace`] — synthetic TLS/TM workloads (evaluation substitution),
//! * [`tm`] — transactional-memory runtime with Eager/Lazy/Bulk schemes,
//! * [`tls`] — thread-level-speculation runtime with the same schemes,
//! * [`chaos`] — deterministic fault injection and runtime invariant
//!   auditing for both runtimes,
//! * [`obs`] — observability: metrics registry, protocol event log, and
//!   false-positive attribution against the exact oracle (DESIGN.md §8),
//! * [`live`] — liveness engine: forward-progress watchdog, age-based
//!   backoff arbitration, commit-arbiter failover and crash-consistent
//!   checkpoints (DESIGN.md §9),
//! * [`mc`] — explicit-state model checker for the commit/squash/failover
//!   protocol, with mutation testing and interleaving-class conformance
//!   replay onto the real machines (DESIGN.md §12),
//! * [`par`] — execution substrates: the [`par::Runtime`] trait over the
//!   deterministic sim and a parallel runtime that runs the commit/squash
//!   protocol on real OS threads over a lock-free broadcast log, with the
//!   sim as conformance oracle (DESIGN.md §13),
//! * [`bulkd`] — live telemetry daemon: streaming job ingest over TCP,
//!   multiplexed TM/TLS runs on either substrate, per-job event JSONL
//!   and a Prometheus `/metrics` endpoint (DESIGN.md §14).
//!
//! # Quickstart
//!
//! ```
//! use bulk_repro::sig::{Signature, SignatureConfig};
//! use bulk_repro::mem::Addr;
//!
//! // The paper's default S14 signature (2 Kbit), line-address granularity.
//! let config = SignatureConfig::s14_tm();
//! let mut w = Signature::new(config.clone());
//! w.insert_line(Addr::new(0x1000).line(64));
//! assert!(w.contains_line(Addr::new(0x1000).line(64)));
//! assert!(!w.is_empty());
//! ```

pub use bulk_chaos as chaos;
pub use bulkd;
pub use bulk_core as bulk;
pub use bulk_live as live;
pub use bulk_mc as mc;
pub use bulk_mem as mem;
pub use bulk_obs as obs;
pub use bulk_par as par;
pub use bulk_rng as rng;
pub use bulk_sig as sig;
pub use bulk_sim as sim;
pub use bulk_tls as tls;
pub use bulk_tm as tm;
pub use bulk_trace as trace;
